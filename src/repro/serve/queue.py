"""Journal-backed job queue with exactly-once recovery.

The queue is the in-memory view of the journal: ``accept`` journals a
job (fsynced) before queuing it, settlement journals the outcome before
exposing it, and :func:`recover` rebuilds both maps from a replayed
journal.  Because every handler is a pure function of ``(payload,
seed)`` and the seed derives from the job id
(:func:`repro.serve.router.job_seed`), re-executing an
accepted-but-unsettled job after a crash yields bytes identical to the
run that never crashed — replay is *safe* re-execution, and settled
jobs are never re-executed at all (their results ride in the journal).

:meth:`JobQueue.compact` folds the whole settled history into one
``checkpoint`` record plus re-``accepted`` records for every live job
(see :meth:`repro.serve.journal.Journal.compact` for the crash-safety
sequencing), which bounds the on-disk journal to O(live jobs +
checkpoint) without weakening any replay guarantee.
"""

from __future__ import annotations

from collections import OrderedDict

from ..telemetry import get_metrics
from .journal import Journal, read_journal

__all__ = ["JobQueue", "recover"]


class JobQueue:
    """Pending jobs + settled outcomes, every transition journaled.

    ``pending`` maps job id -> job dict in acceptance order (dispatch
    order is acceptance order, which keeps replayed executions in the
    same order the crashed daemon would have used).  ``taken`` holds
    jobs handed to a dispatcher but not yet settled — still the
    daemon's responsibility (a crash replays them), and still counted
    in :meth:`depth` so admission control sees honest load while the
    persistent pool works.  ``outcomes`` maps job id -> settlement dict
    (``{"status": "done", "result": ...}`` or ``{"status": "failed",
    "reason": ..., "message": ...}``).  ``accepted`` maps every job id
    ever accepted -> its job spec, regardless of where the job is now —
    it is how a retried submit of an id the daemon already holds is
    recognized as the *same* job instead of a duplicate (see
    :meth:`ReproService._handle_submit`).
    """

    def __init__(self, journal):
        if not isinstance(journal, Journal):
            journal = Journal(journal)
        self.journal = journal
        self.pending = OrderedDict()
        self.taken = OrderedDict()
        self.outcomes = {}
        self.accepted = {}
        self._seq = 0

    # ------------------------------------------------------------------
    def depth(self):
        return len(self.pending) + len(self.taken)

    def accept(self, job):
        """Journal (fsync) then queue one job; returns its id.

        After this returns, the job is recoverable: a SIGKILL at any
        later point leaves an ``accepted`` record that replay turns
        back into a pending job.
        """
        job_id = job["job_id"]
        if job_id in self.accepted:
            raise ValueError("duplicate job id %r" % job_id)
        self._seq += 1
        self.journal.append("accepted", fsync=True, seq=self._seq, **job)
        self.pending[job_id] = dict(job)
        self.accepted[job_id] = dict(job)
        get_metrics().counter("serve.accepted").inc()
        return job_id

    def settle_done(self, job_id, result):
        """Journal a completed job's result and retire it from pending."""
        self.journal.append("done", job_id=job_id, result=result)
        self.pending.pop(job_id, None)
        self.taken.pop(job_id, None)
        self.outcomes[job_id] = {"status": "done", "result": result}
        get_metrics().counter("serve.completed").inc()
        return self.outcomes[job_id]

    def settle_failed(self, job_id, reason, message=""):
        """Journal a failed job (typed reason) and retire it."""
        self.journal.append("failed", job_id=job_id, reason=reason,
                            message=message)
        self.pending.pop(job_id, None)
        self.taken.pop(job_id, None)
        self.outcomes[job_id] = {
            "status": "failed", "reason": reason, "message": message,
        }
        get_metrics().counter("serve.failed").inc()
        return self.outcomes[job_id]

    def outcome(self, job_id):
        """The settlement for ``job_id``, or None while pending/unknown."""
        return self.outcomes.get(job_id)

    def take(self, limit):
        """Dequeue up to ``limit`` jobs (acceptance order) for dispatch.

        Taken jobs stay the daemon's responsibility: they move to
        ``taken`` (still in the recovery set and still counted in
        ``depth``) and are only retired by a settlement record, so a
        crash mid-execution replays them.
        """
        batch = []
        while self.pending and len(batch) < limit:
            job_id, job = self.pending.popitem(last=False)
            self.taken[job_id] = job
            batch.append(job)
        return batch

    def requeue(self, job):
        """Put an unsettled job back at the *front* (drain interrupted)."""
        self.taken.pop(job["job_id"], None)
        self.pending[job["job_id"]] = job
        self.pending.move_to_end(job["job_id"], last=False)

    def compact(self):
        """Fold the journal into one checkpoint segment.

        The checkpoint carries every settled outcome (with its job spec,
        so idempotent resubmits still match) and the acceptance counter;
        live jobs — taken first, then pending, preserving acceptance
        order — are re-journaled as fresh ``accepted`` records.  Replay
        of the compacted journal is byte-identical to replay of the
        uncompacted one.  Returns the new active segment path.
        """
        settled_specs = {
            job_id: spec for job_id, spec in self.accepted.items()
            if job_id in self.outcomes
        }
        bodies = [{
            "type": "checkpoint",
            "seq": self._seq,
            "outcomes": self.outcomes,
            "accepted": settled_specs,
        }]
        for job in list(self.taken.values()) + list(self.pending.values()):
            bodies.append({"type": "accepted", **job})
        path = self.journal.compact(bodies)
        get_metrics().counter("serve.compactions").inc()
        return path

    def mark_stop(self):
        """Journal the clean-shutdown marker (fsynced)."""
        self.journal.append("stop", fsync=True)

    def close(self):
        self.journal.close()


def recover(journal_path):
    """Rebuild a :class:`JobQueue` from a journal file.

    Returns ``(queue, stats)`` where ``stats`` is the
    :class:`repro.serve.journal.JournalStats` of the replay.  Every
    verified ``accepted`` record without a matching settlement becomes a
    pending job again — exactly once, in acceptance order; settled jobs
    come back as outcomes and are never re-executed.  A ``checkpoint``
    record resets the rebuild to its recorded state (replay across a
    compaction is byte-identical to replay of the uncompacted journal).
    """
    stats = read_journal(journal_path)
    queue = JobQueue(Journal(journal_path))
    for body in stats.records:
        kind = body.get("type")
        if kind == "accepted":
            job = {
                key: value for key, value in body.items()
                if key not in ("type", "seq")
            }
            queue.pending[job["job_id"]] = job
            queue.accepted[job["job_id"]] = dict(job)
            queue._seq = max(queue._seq, int(body.get("seq", 0)))
        elif kind == "done":
            queue.pending.pop(body.get("job_id"), None)
            queue.outcomes[body.get("job_id")] = {
                "status": "done", "result": body.get("result"),
            }
        elif kind == "failed":
            queue.pending.pop(body.get("job_id"), None)
            queue.outcomes[body.get("job_id")] = {
                "status": "failed",
                "reason": body.get("reason", "?"),
                "message": body.get("message", ""),
            }
        elif kind == "checkpoint":
            queue.pending.clear()
            queue.taken.clear()
            queue.outcomes = {
                job_id: dict(outcome)
                for job_id, outcome in (body.get("outcomes") or {}).items()
            }
            queue.accepted = {
                job_id: dict(spec)
                for job_id, spec in (body.get("accepted") or {}).items()
            }
            queue._seq = max(queue._seq, int(body.get("seq", 0)))
    if queue.pending:
        get_metrics().counter("serve.replayed").inc(len(queue.pending))
    return queue, stats
