"""Shared input validation helpers."""

from __future__ import annotations

import numpy as np

__all__ = ["validate_xy"]


def validate_xy(x, y):
    """Validate and canonicalize a (features, labels) pair.

    Returns float64 features (n, d) and int64 labels (n,).  Rejects
    non-finite features: a single NaN/Inf embedding silently poisons
    every distance computation downstream (k-NN, EOS enemy search,
    SMOTE interpolation), so it must fail loudly at the boundary.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.int64)
    if x.ndim != 2:
        raise ValueError("X must be 2D (n_samples, n_features), got %s" % (x.shape,))
    if y.ndim != 1 or y.shape[0] != x.shape[0]:
        raise ValueError("y must be 1D and aligned with X")
    if x.shape[0] == 0:
        raise ValueError("cannot resample an empty dataset")
    if not np.isfinite(x).all():
        bad = np.nonzero(~np.isfinite(x).all(axis=1))[0]
        raise ValueError(
            "X contains non-finite values (NaN/Inf) in %d row(s), first at "
            "row %d; clean or impute before resampling" % (bad.size, bad[0])
        )
    return x, y
