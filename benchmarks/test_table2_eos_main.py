"""Benchmark for Table II: the paper's main accuracy table.

Losses {CE, ASL, Focal, LDAM} x samplers {baseline, SMOTE, BSMOTE,
BalSVM, EOS} on the CIFAR-10-like profile.  Paper shape: every
embedding-space sampler beats the raw baseline; EOS is the best sampler
in most rows.
"""

from conftest import run_once

from repro.experiments import run_table2


def test_table2_eos_main(benchmark, config, cache):
    out = run_once(
        benchmark,
        lambda: run_table2(config, datasets=("cifar10_like",), cache=cache),
    )
    print("\n" + out["report"])
    results = out["results"]
    for loss in ("ce", "asl", "focal", "ldam"):
        base = results[("cifar10_like", loss, "none")]["bac"]
        eos = results[("cifar10_like", loss, "eos")]["bac"]
        assert eos > base, "EOS must beat the %s baseline" % loss
