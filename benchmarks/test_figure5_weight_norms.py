"""Benchmark for Figure 5: per-class classifier weight norms.

Paper shape: under the raw baseline, weight norms decay from the
majority to the minority classes; re-training on balanced embeddings
(especially with EOS) evens out — and typically enlarges — the norms.
"""

import numpy as np
from conftest import run_once

from repro.experiments import run_figure5


def test_figure5_weight_norms(benchmark, config, cache):
    out = run_once(
        benchmark,
        lambda: run_figure5(config, losses=("ce", "ldam"), cache=cache),
    )
    print("\n" + out["report"])
    profiles = out["profiles"]

    def cv(values):
        return values.std() / values.mean()

    # The clean phenomenon shows under plain cross-entropy: baseline
    # norms decay toward the minority classes and every balanced
    # re-training flattens them.  (LDAM's deferred re-weighting already
    # pre-balances its norms — the paper itself notes the per-loss
    # picture is "uneven" — so LDAM is printed for context only.)
    base = profiles[("ce", "none")]
    half = len(base) // 2
    assert base[:half].mean() > base[half:].mean()
    for sampler in ("smote", "bsmote", "balsvm", "eos"):
        assert cv(profiles[("ce", sampler)]) < cv(base)
