"""Substrate benchmark: traced tiny Table-II plus hot-kernel micro timings.

Measures the two things the ROADMAP's "make the tensor substrate fast"
item cares about:

* the **traced tiny Table-II run** — the same workload BENCH_trace.json
  recorded — reporting wall time and the share of ``train.batch`` (the
  autograd hot path) in the total, and
* **micro-kernels**: conv2d forward+backward (the dominant op by tape
  profile), a full eval-mode model forward under ``no_grad`` (the fast
  path that skips tape bookkeeping), and one head fine-tuning step.

Run it from the repo root::

    PYTHONPATH=src python benchmarks/bench_substrate.py --out measured.json

The committed ``BENCH_substrate.json`` holds a ``before`` snapshot
(recorded at the pre-optimization commit) and an ``after`` snapshot from
the same machine; ``tests/test_substrate_bench.py`` re-measures at tiny
scale and fails when the ``train.batch`` share regresses more than 10%
against the committed ``after`` baseline.
"""

from __future__ import annotations

import argparse
import json

import numpy as np

from repro import telemetry
from repro.evals import MatrixSpec, run_matrix
from repro.experiments import ExperimentConfig
from repro.telemetry import summarize_trace
from repro.telemetry.clock import monotonic

__all__ = ["traced_table2", "micro_kernels", "measure_all"]


def _default_dtype():
    """The substrate default; float64 on the pre-switch substrate."""
    try:
        from repro.tensor import default_dtype
    except ImportError:
        return np.float64
    return default_dtype()


def traced_table2(seed=0, repeats=1):
    """Run the traced tiny Table-II workload; return span aggregates.

    This is the BENCH_trace.json workload: every phase-1 extractor, every
    sampler comparison, fully traced.  Returns total wall seconds plus
    per-span totals for the hot-path spans and the ``train.batch`` share.
    """
    best = None
    for _ in range(repeats):
        config = ExperimentConfig(scale="tiny", seed=seed)
        with telemetry.session() as sess:
            run_matrix(MatrixSpec("table2", config=config))
        summary = summarize_trace(sess.records)
        spans = summary["spans"]

        def span_seconds(name):
            entry = spans.get(name)
            return round(entry["seconds"], 4) if entry else 0.0

        total = summary["total_seconds"]
        result = {
            "total_seconds": round(total, 4),
            "train_batch_seconds": span_seconds("train.batch"),
            "finetune_batch_seconds": span_seconds("finetune.batch"),
            "extract_seconds": span_seconds("extract"),
            "train_batch_share": round(
                span_seconds("train.batch") / total, 4
            ) if total else 0.0,
        }
        if best is None or result["total_seconds"] < best["total_seconds"]:
            best = result
    return best


def _best_of(fn, repeats=5, inner=1):
    """Minimum wall seconds of ``inner`` calls, over ``repeats`` trials."""
    best = float("inf")
    for _ in range(repeats):
        start = monotonic()
        for _ in range(inner):
            fn()
        best = min(best, (monotonic() - start) / inner)
    return best


def micro_kernels(repeats=5):
    """Time the individual hot kernels; returns {name: seconds}."""
    from repro.losses import CrossEntropyLoss
    from repro.nn import SmallConvNet
    from repro.optim import SGD
    from repro.tensor import Tensor, conv2d, no_grad

    dt = _default_dtype()
    rng = np.random.default_rng(0)
    results = {}

    # conv2d forward+backward: the top op by tape-profiler backward cost.
    x_data = rng.normal(size=(32, 8, 12, 12)).astype(dt)
    w_data = (rng.normal(size=(16, 8, 3, 3)) * 0.1).astype(dt)
    x = Tensor(x_data, requires_grad=True)
    w = Tensor(w_data, requires_grad=True)

    def conv_train():
        x.zero_grad()
        w.zero_grad()
        out = conv2d(x, w, stride=1, padding=1)
        out.sum().backward()

    results["conv2d_train_step"] = _best_of(conv_train, repeats, inner=4)

    # conv2d forward under no_grad: the eval/extract fast path.
    x_eval = Tensor(x_data)
    w_eval = Tensor(w_data)

    def conv_eval():
        with no_grad():
            conv2d(x_eval, w_eval, stride=1, padding=1)

    results["conv2d_eval_forward"] = _best_of(conv_eval, repeats, inner=8)

    # Full model eval forward (BN running-stats path + pooling + head).
    model = SmallConvNet(num_classes=10, in_channels=3, width=8,
                         rng=np.random.default_rng(1))
    batch = (rng.normal(size=(64, 3, 12, 12)) * 0.2).astype(dt)
    model(Tensor(batch))  # one training-mode pass to warm BN stats
    model.eval()

    def model_eval():
        with no_grad():
            model(Tensor(batch))

    results["model_eval_forward"] = _best_of(model_eval, repeats, inner=4)

    # One head fine-tuning step: the phase-3 hot loop.
    emb = rng.normal(size=(256, model.feature_dim)).astype(dt)
    labels = rng.integers(0, 10, size=256)
    loss = CrossEntropyLoss()
    optimizer = SGD(model.classifier.parameters(), lr=0.05, momentum=0.9)

    def finetune_step():
        optimizer.zero_grad()
        value = loss(model.forward_head(Tensor(emb)), labels)
        value.backward()
        optimizer.step()

    results["finetune_step"] = _best_of(finetune_step, repeats, inner=8)

    return {name: round(seconds, 6) for name, seconds in results.items()}


def measure_all(seed=0, table_repeats=1, micro_repeats=5):
    """One full measurement payload (table run + micro kernels)."""
    return {
        "default_dtype": str(np.dtype(_default_dtype())),
        "table2_tiny_traced": traced_table2(seed=seed, repeats=table_repeats),
        "micro_kernels": micro_kernels(repeats=micro_repeats),
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=None,
                        help="write the measurement JSON here")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--table-repeats", type=int, default=1)
    parser.add_argument("--micro-repeats", type=int, default=5)
    args = parser.parse_args(argv)
    payload = measure_all(seed=args.seed, table_repeats=args.table_repeats,
                          micro_repeats=args.micro_repeats)
    text = json.dumps(payload, indent=2, sort_keys=True)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text + "\n")
    print(text)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
