"""Benchmark for Figure 4: generalization gap of TPs vs FPs.

Paper shape: the range gap is 2-4x larger for false positives than for
true positives on every dataset.
"""

from conftest import run_once

from repro.experiments import run_figure4


def test_figure4_tp_fp_gap(benchmark, config, cache):
    out = run_once(
        benchmark,
        lambda: run_figure4(
            config, datasets=("cifar10_like", "celeba_like"), cache=cache
        ),
    )
    print("\n" + out["report"])
    for dataset, gaps in out["results"].items():
        assert gaps["fp"] > gaps["tp"], (
            "%s: FP gap must exceed TP gap" % dataset
        )
