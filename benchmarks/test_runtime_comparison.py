"""Benchmark for the paper's Section V-E2 runtime comparison.

Paper shape: full training on a pixel-space pre-balanced dataset costs
~3x the EOS pipeline (imbalanced phase-1 training + embedding
extraction + 10-epoch head fine-tune), because pre-balancing multiplies
the number of training batches while EOS touches only the tiny head on
low-dimensional embeddings.
"""

from conftest import run_once

from repro.experiments import run_runtime_comparison


def test_runtime_comparison(benchmark, config):
    out = run_once(benchmark, lambda: run_runtime_comparison(config))
    print("\n" + out["report"])
    # The pre-processing pipeline must be meaningfully slower (paper: ~3x;
    # we only require a robust >1.3x at bench scale).
    assert out["speedup"] > 1.3
