"""Ablation benchmark: EOS vs the decoupled-classifier family.

The paper's related work positions EOS against Decoupling-style head
re-training (Kang et al.).  This ablation compares, on the same phase-1
extractor: the raw baseline, cRT (re-init + class-balanced resampling),
tau-normalization (no retraining), NCM (nearest class mean), and the
EOS-balanced fine-tune.

Expected shape: every decoupled variant beats the raw baseline on BAC;
EOS is at or near the top (it is the only one that *adds information*
to the minority classes rather than reweighting what is there).
"""

import numpy as np
from conftest import run_once

from repro.core import (
    DualBranchHead,
    NearestClassMean,
    crt_retrain,
    tau_normalize,
)
from repro.nn import Linear
from repro.core.training import predict_logits
from repro.experiments import evaluate_sampler
from repro.metrics import evaluate_predictions
from repro.utils import format_float, format_table


def test_ablation_decoupling(benchmark, config, cache):
    artifacts = cache.get(config, "ce")
    num_classes = artifacts.info["num_classes"]

    def score_model():
        preds = predict_logits(
            artifacts.model, artifacts.test.images
        ).argmax(axis=1)
        return evaluate_predictions(artifacts.test.labels, preds, num_classes)

    def run():
        rows = {}
        rows["baseline"] = evaluate_sampler(artifacts, "none")

        artifacts.restore_head()
        crt_retrain(
            artifacts.model,
            artifacts.train_embeddings,
            artifacts.train.labels,
            epochs=config.finetune_epochs,
            rng=np.random.default_rng(config.seed),
        )
        rows["cRT"] = score_model()

        artifacts.restore_head()
        tau_normalize(artifacts.model.classifier, tau=1.0)
        rows["tau-norm"] = score_model()

        ncm = NearestClassMean().fit(
            artifacts.train_embeddings, artifacts.train.labels
        )
        ncm_preds = ncm.predict(artifacts.test_embeddings)
        rows["NCM"] = evaluate_predictions(
            artifacts.test.labels, ncm_preds, num_classes
        )

        feature_dim = artifacts.train_embeddings.shape[1]
        # BBN trains both heads from scratch (no phase-1 head warm start),
        # so it needs a longer schedule than the 10-epoch fine-tunes.
        bbn = DualBranchHead(
            lambda: Linear(feature_dim, num_classes,
                           rng=np.random.default_rng(config.seed)),
            epochs=50,
            lr=0.1,
            random_state=config.seed,
        ).fit(artifacts.train_embeddings, artifacts.train.labels)
        rows["BBN-head"] = evaluate_predictions(
            artifacts.test.labels,
            bbn.predict(artifacts.test_embeddings),
            num_classes,
        )

        rows["EOS"] = evaluate_sampler(artifacts, "eos")
        return rows

    rows = run_once(benchmark, run)
    table = format_table(
        ["method", "BAC", "GM", "FM"],
        [
            [name, format_float(m["bac"]), format_float(m["gm"]),
             format_float(m["fm"])]
            for name, m in rows.items()
        ],
        title="Ablation: EOS vs decoupled-classifier baselines",
    )
    print("\n" + table)
    base = rows["baseline"]["bac"]
    for name in ("cRT", "tau-norm", "NCM", "BBN-head", "EOS"):
        assert rows[name]["bac"] > base - 0.02, "%s should not trail baseline" % name
    assert rows["EOS"]["bac"] >= max(
        rows["cRT"]["bac"], rows["NCM"]["bac"]
    ) - 0.08
