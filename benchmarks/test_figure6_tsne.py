"""Benchmark for Figure 6: t-SNE of a majority/minority decision boundary.

Paper shape (qualitative): EOS's re-balanced embedding space yields a
denser, more uniform minority manifold than the baseline.  We check the
quantitative proxy: minority points exist in quantity after resampling
and their normalized mean nearest-neighbor distance does not explode.
"""

import numpy as np
from conftest import run_once

from repro.experiments import run_figure6


def test_figure6_tsne(benchmark, config, cache):
    out = run_once(
        benchmark,
        lambda: run_figure6(
            config, majority_class=1, minority_class=9, cache=cache
        ),
    )
    print("\n" + out["report"])
    embeddings = out["embeddings"]
    coords_base, labels_base = embeddings["none"]
    coords_eos, labels_eos = embeddings["eos"]
    # Resampling must multiply the minority's visible points.
    assert (labels_eos == 9).sum() > (labels_base == 9).sum()
    # All coordinates finite (the optimizer converged).
    for name, (coords, _) in embeddings.items():
        assert np.all(np.isfinite(coords)), name
