"""Benchmark for Figure 7: balanced accuracy vs fine-tuning epochs.

Paper shape: both EOS and SMOTE plateau by ~epoch 10 of classifier
re-training; training longer buys at most marginal improvement.
"""

import numpy as np
from conftest import run_once

from repro.experiments import run_figure7


def test_figure7_epochs(benchmark, config, cache):
    out = run_once(
        benchmark, lambda: run_figure7(config, epochs=30, cache=cache)
    )
    print("\n" + out["report"])
    for name, history in out["curves"].items():
        bacs = np.array([rec["test_bac"] for rec in history])
        by_10 = bacs[9]
        final = bacs[-1]
        # Plateau: the last 20 epochs add (almost) nothing.
        assert final - by_10 < 0.08, "%s must plateau by epoch 10" % name
        # And epoch 10 is already near the curve's best.
        assert by_10 >= bacs.max() - 0.08
