"""Seed-averaged Table II (the paper's three-cut protocol).

The paper trains each model on three cuts of the training set before
selecting one.  This benchmark runs the embedding-space sampler
comparison across three seeds (fresh extractor per seed) and asserts
the headline on the *averages*, where single-cut noise is suppressed:
EOS beats every interpolative sampler on BAC, GM and FM.
"""

from conftest import run_once

from repro.experiments.stats import repeated_sampler_comparison

SAMPLERS = ("none", "smote", "bsmote", "balsvm", "eos")


def test_seed_averaged_table2(benchmark, config):
    small = config.with_overrides(scale="small")
    out = run_once(
        benchmark,
        lambda: repeated_sampler_comparison(small, "ce", SAMPLERS, seeds=(0, 1, 2)),
    )
    print("\n" + out["report"])
    agg = out["aggregated"]
    for metric in ("bac", "gm", "fm"):
        eos_mean = agg["eos"][metric][0]
        for rival in ("none", "smote", "bsmote", "balsvm"):
            assert eos_mean > agg[rival][metric][0], (
                "seed-averaged EOS must beat %s on %s" % (rival, metric)
            )
