"""Benchmark for Table IV: EOS nearest-neighbor size analysis.

Paper shape: BAC generally improves as K grows, then plateaus (the
paper sweeps K in {10, 50, 100, 200, 300} at CIFAR scale; the bench
sweeps proportionally smaller K for the tiny dataset).
"""

from conftest import run_once

from repro.experiments import run_table4


def test_table4_knn_sweep(benchmark, config, cache):
    out = run_once(
        benchmark,
        lambda: run_table4(
            config, datasets=("cifar10_like",), k_values=(2, 5, 10, 20, 40),
            cache=cache,
        ),
    )
    print("\n" + out["report"])
    bacs = [out["results"][("cifar10_like", k)]["bac"] for k in (2, 5, 10, 20, 40)]
    # Larger neighborhoods should not collapse accuracy: the best of the
    # larger-K settings at least matches the smallest K.
    assert max(bacs[1:]) >= bacs[0] - 0.02
