"""Record the serial-vs-parallel wall clock for a tiny Table-II sweep.

Runs the same tiny Table II at ``--workers 1`` and ``--workers 4``,
asserts the outputs are byte-identical (the repro.parallel determinism
contract), and writes the measured wall times to ``BENCH_parallel.json``
at the repo root.  Numbers are recorded honestly alongside
``cpu_count``: on a single-core container the parallel run cannot beat
serial (fork + pickle overhead makes it slightly slower); the speedup
materializes with physical cores.

Usage::

    PYTHONPATH=src python benchmarks/bench_parallel.py
"""

from __future__ import annotations

import json
import os
import sys
import time

from repro.experiments import ExtractorCache, bench_config, run_table2

WORKER_COUNTS = (1, 4)
LOSSES = ("ce",)
SAMPLERS = ("none", "smote", "eos")


def timed_run(config, workers):
    start = time.perf_counter()
    out = run_table2(config, losses=LOSSES, samplers=SAMPLERS,
                     cache=ExtractorCache(), workers=workers)
    return time.perf_counter() - start, out


def main():
    config = bench_config()
    runs = {}
    outputs = {}
    for workers in WORKER_COUNTS:
        seconds, out = timed_run(config, workers)
        runs["workers=%d" % workers] = round(seconds, 4)
        outputs[workers] = out
        print("workers=%d: %.3fs" % (workers, seconds))

    reference = outputs[WORKER_COUNTS[0]]
    for workers in WORKER_COUNTS[1:]:
        if (outputs[workers]["results"] != reference["results"]
                or outputs[workers]["report"] != reference["report"]):
            print("FAIL: workers=%d output differs from serial" % workers)
            return 1
    print("all worker counts byte-identical")

    serial = runs["workers=%d" % WORKER_COUNTS[0]]
    parallel = runs["workers=%d" % WORKER_COUNTS[-1]]
    record = {
        "benchmark": "table2_tiny_parallel",
        "command": "python benchmarks/bench_parallel.py",
        "description": (
            "Wall-clock of the tiny Table-II sweep (losses=%s, samplers=%s)"
            " under repro.parallel worker counts. Outputs verified"
            " byte-identical across counts before recording. Speedup is"
            " bounded by physical cores: on a 1-core machine the parallel"
            " run pays fork/pickle overhead with no concurrency to gain."
            % (list(LOSSES), list(SAMPLERS))
        ),
        "cpu_count": os.cpu_count(),
        "runs_seconds": runs,
        "speedup": round(serial / parallel, 3) if parallel else None,
        "identical_output": True,
    }
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    path = os.path.join(root, "BENCH_parallel.json")
    with open(path, "w") as handle:
        json.dump(record, handle, indent=2)
        handle.write("\n")
    print("wrote %s" % path)
    return 0


if __name__ == "__main__":
    sys.exit(main())
