"""Benchmark for Table III: EOS vs GAN-based over-samplers.

Paper shape: GAMO and BAGAN trail EOS; CGAN is competitive but trains
one generative model per deficient class (its cost is reported in the
last column).
"""

from conftest import run_once

from repro.experiments import run_table3


def test_table3_gan_comparison(benchmark, config, cache):
    out = run_once(
        benchmark,
        lambda: run_table3(config, datasets=("cifar10_like",), cache=cache),
    )
    print("\n" + out["report"])
    results = out["results"]
    eos = results[("cifar10_like", "ce", "eos")]["bac"]
    gamo = results[("cifar10_like", "ce", "gamo")]["bac"]
    bagan = results[("cifar10_like", "ce", "bagan")]["bac"]
    # EOS at least matches the weaker GAN methods (paper: clearly beats).
    assert eos >= min(gamo, bagan) - 0.02
    # And is cheaper than every GAN sampler.
    timing = out["timing"]
    for gan in ("gamo", "bagan", "cgan"):
        assert timing[("cifar10_like", "ce", "eos")] < timing[
            ("cifar10_like", "ce", gan)
        ]
