"""Ablation benchmark: EOS interpolation direction and enemy weighting.

DESIGN.md notes the paper's Algorithm-2 pseudo-code writes
``B + R*(B - N)`` while the prose describes convex combinations toward
the nearest enemy.  This ablation compares:

* ``toward`` (default): b + r (n - b) — expands ranges toward enemies;
* ``away``: the literal pseudo-code sign — reflects away from enemies;
* distance-weighted vs uniform enemy sampling probabilities.

Expected shape: ``toward`` expands minority ranges and closes the gap;
``away`` cannot reduce the boundary-side gap the same way.
"""

import numpy as np
from conftest import run_once

from repro.core.gap import generalization_gap
from repro.experiments import build_sampler, evaluate_sampler
from repro.utils import format_float, format_table


def test_ablation_eos_direction(benchmark, config, cache):
    artifacts = cache.get(config, "ce")

    def run():
        rows = {}
        for name, kwargs in (
            ("toward/uniform", {}),
            ("away/uniform", {"direction": "away"}),
            ("toward/distance", {"weighting": "distance"}),
        ):
            sampler = build_sampler(
                "eos",
                k_neighbors=config.k_neighbors,
                random_state=config.seed,
                **kwargs,
            )
            emb, labels = sampler.fit_resample(
                artifacts.train_embeddings, artifacts.train.labels
            )
            gap = generalization_gap(
                emb,
                labels,
                artifacts.test_embeddings,
                artifacts.test.labels,
                artifacts.info["num_classes"],
            )["mean"]
            metrics = evaluate_sampler(
                artifacts, "eos", sampler_kwargs=kwargs
            )
            rows[name] = (metrics, gap)
        return rows

    rows = run_once(benchmark, run)
    table = format_table(
        ["variant", "BAC", "GM", "FM", "mean gap"],
        [
            [name, format_float(m["bac"]), format_float(m["gm"]),
             format_float(m["fm"]), format_float(g, 3)]
            for name, (m, g) in rows.items()
        ],
        title="Ablation: EOS direction & enemy weighting",
    )
    print("\n" + table)
    # The convex-combination direction must close the gap at least as
    # well as the reflected one.
    assert rows["toward/uniform"][1] <= rows["away/uniform"][1] + 1e-9
