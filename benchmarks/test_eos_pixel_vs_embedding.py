"""Benchmark for Section V-E3: EOS in pixel space vs embedding space.

Paper shape: applying EOS as a pixel-space pre-processing step loses
~7 BAC points vs applying it to the learned feature embeddings.
"""

from conftest import run_once

from repro.experiments import run_eos_pixel_vs_embedding


def test_eos_pixel_vs_embedding(benchmark, config, cache):
    # This comparison needs the "small" scale: at the tiny scale the
    # variance across training runs swamps the effect.  (Note: the
    # paper's ~7-point margin is larger than ours because natural-image
    # pixel space is far less linearly separable than our synthetic
    # families' pixel space — see EXPERIMENTS.md.)
    small = config.with_overrides(scale="small")
    out = run_once(
        benchmark, lambda: run_eos_pixel_vs_embedding(small, cache=cache)
    )
    print("\n" + out["report"])
    # Embedding-space EOS must not lose to pixel-space EOS.
    assert out["delta_bac"] > -0.03
