"""Serve dispatch benchmark: fork-per-job vs the persistent pool.

Measures what the persistent worker set exists to fix: the per-job
dispatch cost of the serve daemon.  In fork-per-job mode every batch
pays a full ``os.fork`` per job (plus interpreter COW warmup in the
child); in persistent mode the workers are forked once and each job
costs one pickled frame each way.

Both modes run the identical ``echo`` job stream handler-level (no
sockets — the wire protocol is the same in both modes and would only
add noise), and their settlements are verified byte-identical before
anything is recorded: the speedup must never come at the price of the
determinism contract.

Run it from the repo root::

    PYTHONPATH=src python benchmarks/bench_serve.py

The committed ``BENCH_serve.json`` records both modes and the speedup;
``tests/test_serve_bench.py`` re-measures at small scale and fails when
the persistent-mode advantage decays more than 10% below the committed
figure.
"""

from __future__ import annotations

import json
import os
import shutil
import sys
import tempfile
import time

from repro.serve import ReproService

__all__ = ["measure_mode", "measure_all"]

JOBS = 64
WORKERS = 2


def measure_mode(persistent, jobs=JOBS, workers=WORKERS):
    """Time ``jobs`` echo dispatches through one service mode.

    Returns ``(record, outcomes)`` where ``outcomes`` maps job id to
    its settlement — the caller diffs them across modes.
    """
    root = tempfile.mkdtemp(prefix="bench-serve-")
    try:
        service = ReproService(
            os.path.join(root, "repro.sock"),
            os.path.join(root, "journal.jsonl"),
            max_depth=jobs + 1,
            workers=workers,
            persistent=persistent,
        )
        for i in range(jobs):
            response = service._handle_submit({
                "kind": "echo", "client": "bench",
                "job_id": "bench-%04d" % i, "payload": {"n": i},
            })
            assert response["status"] == "ok", response
        if persistent:
            # Pre-fork outside the timed window: the pool is a one-time
            # startup cost, the dispatch latency is what long-lived
            # serving pays per job.
            service._ensure_pool()
        start = time.perf_counter()
        spins = 0
        while len(service.queue.outcomes) < jobs:
            service._dispatch_some()
            spins += 1
            assert spins < 200000, "dispatch never drained"
        elapsed = time.perf_counter() - start
        outcomes = {
            "bench-%04d" % i: service.queue.outcome("bench-%04d" % i)
            for i in range(jobs)
        }
        if service._pool is not None:
            service._pool.close()
            service._pool = None
        service.queue.close()
    finally:
        shutil.rmtree(root, ignore_errors=True)
    record = {
        "mode": "persistent" if persistent else "fork-per-job",
        "jobs": jobs,
        "workers": workers,
        "seconds": round(elapsed, 4),
        "per_job_ms": round(elapsed / jobs * 1000.0, 4),
        "throughput_jobs_per_s": round(jobs / elapsed, 2),
    }
    return record, outcomes


def measure_all(jobs=JOBS, workers=WORKERS):
    """Both modes on the identical job stream; asserts identical output."""
    fork_record, fork_outcomes = measure_mode(False, jobs, workers)
    persistent_record, persistent_outcomes = measure_mode(True, jobs, workers)
    if fork_outcomes != persistent_outcomes:
        raise AssertionError(
            "persistent settlements differ from fork-per-job — the "
            "determinism contract is broken; refusing to record a speedup"
        )
    speedup = (fork_record["per_job_ms"] /
               persistent_record["per_job_ms"])
    return {
        "benchmark": "serve_dispatch_latency",
        "command": "python benchmarks/bench_serve.py",
        "description": (
            "Per-job dispatch latency of the serve daemon, handler-level, "
            "%d echo jobs at workers=%d: fork-per-job (a full os.fork per "
            "job) vs the pre-forked PersistentPool (one pickled frame each "
            "way). Settlements verified byte-identical across modes before "
            "recording." % (jobs, workers)
        ),
        "cpu_count": os.cpu_count(),
        "fork_per_job": fork_record,
        "persistent": persistent_record,
        "speedup": round(speedup, 3),
        "identical_output": True,
    }


def main():
    record = measure_all()
    print("fork-per-job: %.3f ms/job  persistent: %.3f ms/job  "
          "speedup: %.2fx"
          % (record["fork_per_job"]["per_job_ms"],
             record["persistent"]["per_job_ms"], record["speedup"]))
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    path = os.path.join(root, "BENCH_serve.json")
    with open(path, "w") as handle:
        json.dump(record, handle, indent=2)
        handle.write("\n")
    print("wrote %s" % path)
    return 0


if __name__ == "__main__":
    sys.exit(main())
