"""Ablation benchmark: the generalization gap vs complementary measures.

The paper's future work calls for measures complementary to the
range-based gap.  This ablation computes, on one trained extractor, the
paper's gap (Algorithm 1), the Ye et al. feature-mean deviation, the
outlier-robust quantile gap, and the coverage gap — and checks they all
agree on the core phenomenon: minority classes generalize worse, and
EOS improves them.
"""

import numpy as np
from conftest import run_once

from repro.core import EOS, coverage_gap, feature_deviation, quantile_gap
from repro.core.gap import generalization_gap
from repro.utils import format_float, format_table


def test_ablation_gap_measures(benchmark, config, cache):
    artifacts = cache.get(config, "ce")
    num_classes = artifacts.info["num_classes"]
    train_emb = artifacts.train_embeddings
    train_y = artifacts.train.labels
    test_emb = artifacts.test_embeddings
    test_y = artifacts.test.labels

    measures = {
        "range gap (Alg.1)": lambda e, y: generalization_gap(
            e, y, test_emb, test_y, num_classes
        )["per_class"],
        "feature deviation": lambda e, y: feature_deviation(
            e, y, test_emb, test_y, num_classes
        )["per_class"],
        "quantile gap q=.05": lambda e, y: quantile_gap(
            e, y, test_emb, test_y, num_classes
        )["per_class"],
        # min_violations scales with the embedding dim: in D dims almost
        # every point violates *some* dimension, so requiring ~D/4
        # violations keeps the measure informative.
        "coverage gap": lambda e, y: coverage_gap(
            e, y, test_emb, test_y, num_classes,
            min_violations=max(1, train_emb.shape[1] // 4),
        )["per_class"],
    }

    def run():
        eos = EOS(k_neighbors=config.k_neighbors, random_state=config.seed)
        eos_emb, eos_y = eos.fit_resample(train_emb, train_y)
        out = {}
        for name, fn in measures.items():
            out[name] = (fn(train_emb, train_y), fn(eos_emb, eos_y))
        return out

    out = run_once(benchmark, run)
    rows = []
    half = num_classes // 2
    for name, (base, eos) in out.items():
        rows.append(
            [
                name,
                format_float(np.nanmean(base[:half]), 3),
                format_float(np.nanmean(base[half:]), 3),
                format_float(np.nanmean(eos[half:]), 3),
            ]
        )
    print(
        "\n"
        + format_table(
            ["measure", "majority half", "minority half", "minority+EOS"],
            rows,
            title="Ablation: gap measures agree on the imbalance phenomenon",
        )
    )
    for name, (base, eos) in out.items():
        maj = np.nanmean(base[:half])
        mino = np.nanmean(base[half:])
        assert mino > maj, "%s: minority must look worse" % name
        # EOS moves the minority-half measure toward the majority level
        # for the range-based measures (deviation measures class means,
        # which EOS's expansion can shift either way).
        if "deviation" not in name:
            assert np.nanmean(eos[half:]) < mino, name
