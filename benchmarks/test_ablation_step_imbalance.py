"""Ablation benchmark: exponential vs step imbalance profiles.

The paper studies exponential imbalance (most common in image data) but
notes step imbalance as the other common profile.  This ablation applies
the full three-phase EOS pipeline under both profiles at the same
max-imbalance ratio and verifies the framework's gains transfer.
"""

import numpy as np
from conftest import run_once

from repro.core import EOS, ThreePhaseTrainer
from repro.data import apply_imbalance, exponential_profile, step_profile
from repro.data.synthetic import DATASET_PROFILES, SyntheticImageFamily
from repro.losses import CrossEntropyLoss
from repro.nn import build_model
from repro.optim import SGD
from repro.utils import format_float, format_table


def _run_profile(profile_fn, seed=0, n_max=60, ratio=20):
    family = SyntheticImageFamily(DATASET_PROFILES["cifar10_like"]["config"])
    rng = np.random.default_rng(seed)
    counts = profile_fn(n_max, 10, ratio)
    train = apply_imbalance(family.sample(n_max, rng), counts, rng)
    test = family.sample(30, rng)

    model = build_model(
        "smallconvnet", num_classes=10, width=6, rng=np.random.default_rng(seed + 1)
    )
    trainer = ThreePhaseTrainer(
        model,
        CrossEntropyLoss(),
        SGD(model.parameters(), lr=0.05, momentum=0.9, weight_decay=5e-4),
        sampler=EOS(k_neighbors=10, random_state=seed),
    )
    trainer.train_phase1(train, epochs=20, batch_size=32,
                         rng=np.random.default_rng(seed + 2))
    before = trainer.phase1.evaluate(test)["bac"]
    trainer.extract_embeddings(train)
    trainer.resample_embeddings()
    trainer.finetune(epochs=10, rng=np.random.default_rng(seed + 3))
    after = trainer.evaluate(test)["bac"]
    return before, after


def test_ablation_step_imbalance(benchmark):
    def run():
        return {
            "exponential": _run_profile(exponential_profile),
            "step": _run_profile(step_profile),
        }

    out = run_once(benchmark, run)
    rows = [
        [name, format_float(before), format_float(after),
         format_float(after - before)]
        for name, (before, after) in out.items()
    ]
    print(
        "\n"
        + format_table(
            ["profile", "baseline BAC", "EOS BAC", "delta"],
            rows,
            title="Ablation: EOS under exponential vs step imbalance",
        )
    )
    for name, (before, after) in out.items():
        assert after > before, "EOS must help under %s imbalance" % name
