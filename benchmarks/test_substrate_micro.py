"""Micro-benchmarks of the substrate's hot paths.

Not tied to a paper table — these measure the computational kernels the
experiments stand on (conv forward+backward, k-NN queries, EOS
resampling, head fine-tuning) so performance regressions are visible.
Each runs under pytest-benchmark's normal multi-round timing.
"""

import numpy as np
import pytest

from repro.core import EOS, finetune_classifier
from repro.neighbors import KNeighbors
from repro.nn import SmallConvNet
from repro.tensor import Tensor, conv2d


@pytest.fixture(scope="module")
def rng():
    return np.random.default_rng(0)


def test_conv2d_forward_backward(benchmark, rng):
    x = Tensor(rng.normal(size=(16, 8, 12, 12)), requires_grad=True)
    w = Tensor(rng.normal(size=(16, 8, 3, 3)) * 0.1, requires_grad=True)

    def step():
        x.zero_grad()
        w.zero_grad()
        out = conv2d(x, w, stride=1, padding=1)
        (out * out).sum().backward()
        return out.shape

    assert benchmark(step) == (16, 16, 12, 12)


def test_knn_query(benchmark, rng):
    data = rng.normal(size=(2000, 24))
    index = KNeighbors(k=10).fit(data)
    queries = rng.normal(size=(200, 24))

    def step():
        dists, idx = index.query(queries)
        return idx.shape

    assert benchmark(step) == (200, 10)


def test_eos_resample(benchmark, rng):
    counts = [400, 150, 60, 25, 10, 4]
    x = np.concatenate(
        [rng.normal(c, 1.0, size=(n, 24)) for c, n in enumerate(counts)]
    )
    y = np.concatenate([np.full(n, c) for c, n in enumerate(counts)])
    sampler = EOS(k_neighbors=10, random_state=0)

    def step():
        xr, yr = sampler.fit_resample(x, y)
        return len(xr)

    assert benchmark(step) == 400 * len(counts)


def test_head_finetune_epoch(benchmark, rng):
    model = SmallConvNet(num_classes=10, width=6, rng=rng)
    emb = rng.normal(size=(1000, model.feature_dim))
    labels = rng.integers(0, 10, 1000)

    def step():
        history = finetune_classifier(
            model, emb, labels, epochs=1, rng=np.random.default_rng(0)
        )
        return len(history)

    assert benchmark(step) == 1
