"""Ablation benchmark: single EOS-tuned head vs balanced head ensembles.

An extension beyond the paper: phase 3 can train an *ensemble* of heads
on balanced embedding views (under-bagging, or EOS-resampled views)
instead of one head.  Expected shape: ensembles match or beat the
single head, and the EOS-view ensemble at least matches under-bagging
(it adds information instead of discarding majority data).
"""

import numpy as np
from conftest import run_once

from repro.core import EOS
from repro.ensemble import BalancedHeadEnsemble
from repro.experiments import evaluate_sampler
from repro.metrics import evaluate_predictions
from repro.nn import Linear
from repro.utils import format_float, format_table


def test_ablation_head_ensemble(benchmark, config, cache):
    artifacts = cache.get(config, "ce")
    feature_dim = artifacts.train_embeddings.shape[1]
    num_classes = artifacts.info["num_classes"]

    def head_factory():
        return Linear(feature_dim, num_classes, rng=np.random.default_rng(0))

    def score(ensemble):
        preds = ensemble.predict(artifacts.test_embeddings)
        return evaluate_predictions(artifacts.test.labels, preds, num_classes)

    def run():
        rows = {}
        rows["single head + EOS"] = evaluate_sampler(artifacts, "eos")

        under = BalancedHeadEnsemble(
            head_factory, n_heads=5, mode="undersample",
            epochs=config.finetune_epochs, random_state=config.seed,
        ).fit(artifacts.train_embeddings, artifacts.train.labels)
        rows["under-bagging x5"] = score(under)

        eos_views = BalancedHeadEnsemble(
            head_factory,
            n_heads=5,
            mode="oversample",
            sampler_factory=lambda seed: EOS(
                k_neighbors=config.k_neighbors, random_state=seed
            ),
            epochs=config.finetune_epochs,
            random_state=config.seed,
        ).fit(artifacts.train_embeddings, artifacts.train.labels)
        rows["EOS-view ensemble x5"] = score(eos_views)
        return rows

    rows = run_once(benchmark, run)
    print(
        "\n"
        + format_table(
            ["method", "BAC", "GM", "FM"],
            [
                [name, format_float(m["bac"]), format_float(m["gm"]),
                 format_float(m["fm"])]
                for name, m in rows.items()
            ],
            title="Ablation: phase-3 head ensembles",
        )
    )
    base = rows["single head + EOS"]["bac"]
    assert rows["EOS-view ensemble x5"]["bac"] >= base - 0.05
    assert rows["EOS-view ensemble x5"]["bac"] >= (
        rows["under-bagging x5"]["bac"] - 0.05
    )
