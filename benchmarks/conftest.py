"""Shared fixtures for the benchmark suite.

Every benchmark regenerates one of the paper's tables or figures at the
tiny "bench" scale and prints the corresponding report, so running

    pytest benchmarks/ --benchmark-only -s

produces the full set of reproduced tables.  A session-scoped
ExtractorCache shares phase-1 training across benchmarks; the benchmark
timings therefore measure the *experiment-specific* work (resampling,
fine-tuning, analysis), which is what the paper's efficiency claims are
about.
"""

from __future__ import annotations

import pytest

from repro.experiments import ExtractorCache, bench_config


@pytest.fixture(scope="session")
def cache():
    return ExtractorCache()


@pytest.fixture(scope="session")
def config():
    return bench_config()


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
