"""Benchmark for Table V: EOS across CNN architectures.

Paper shape: classifier re-training with EOS improves every backbone
(ResNet-56, WideResNet, DenseNet in the paper; reduced-depth instances
of the same families here).
"""

from conftest import run_once

from repro.experiments import run_table5


def test_table5_architectures(benchmark, config, cache):
    out = run_once(benchmark, lambda: run_table5(config, cache=cache))
    print("\n" + out["report"])
    results = out["results"]
    improved = 0
    total = 0
    for (model, variant), metrics in results.items():
        if variant != "eos":
            continue
        total += 1
        if metrics["bac"] > results[(model, "baseline")]["bac"]:
            improved += 1
    assert improved == total, "EOS must improve every architecture"
