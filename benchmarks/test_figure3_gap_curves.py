"""Benchmark for Figure 3: per-class generalization-gap curves.

Paper shape: the gap rises with the class imbalance level for every
loss; SMOTE-family curves exactly overlap the baseline (interpolation
cannot change feature ranges); only EOS flattens the minority tail.
"""

import numpy as np
from conftest import run_once

from repro.experiments import run_figure3


def test_figure3_gap_curves(benchmark, config, cache):
    out = run_once(benchmark, lambda: run_figure3(config, cache=cache))
    print("\n" + out["report"])
    curves = out["curves"]
    for loss in ("ce", "asl", "focal", "ldam"):
        base = curves[(loss, "none")]
        # (a) the gap rises with class index (class 0 = majority).
        tail_mean = np.nanmean(base[len(base) // 2 :])
        head_mean = np.nanmean(base[: len(base) // 2])
        assert tail_mean > head_mean, "gap must rise with imbalance (%s)" % loss
        # (b) SMOTE-family curves overlap the baseline exactly;
        # Balanced-SVM may drift slightly because its SVM relabeling can
        # hand a class a few foreign points, but the curve still
        # effectively overlaps.
        for sampler in ("smote", "bsmote"):
            np.testing.assert_allclose(
                curves[(loss, sampler)], base, atol=1e-9,
                err_msg="%s must not change feature ranges" % sampler,
            )
        np.testing.assert_allclose(
            curves[(loss, "balsvm")], base, atol=0.08,
            err_msg="balsvm must approximately preserve feature ranges",
        )
        # (c) EOS reduces the tail gap.
        eos_tail = np.nanmean(curves[(loss, "eos")][len(base) // 2 :])
        assert eos_tail < tail_mean, "EOS must flatten the tail gap (%s)" % loss
