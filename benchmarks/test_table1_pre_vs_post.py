"""Benchmark for Table I: pixel-space pre-processing vs embedding-space
over-sampling under cross-entropy loss.

Paper shape: the Post- (embedding-space) variant beats the Pre- variant
in most dataset x sampler cells (7/9 in the paper).
"""

from conftest import run_once

from repro.experiments import run_table1


def test_table1_pre_vs_post(benchmark, config, cache):
    out = run_once(
        benchmark, lambda: run_table1(config, datasets=("cifar10_like",), cache=cache)
    )
    print("\n" + out["report"])
    # Embedding-space over-sampling should win at least half the cells.
    assert out["post_wins"] * 2 >= out["cells"]
