"""Tests for the experiment harness (configs, pipeline, runners).

Runner tests use a session-cached tiny extractor so the whole file stays
fast; they verify mechanics and the paper's robust *shape* claims, not
absolute numbers.
"""

import numpy as np
import pytest

from repro.experiments import (
    ExperimentConfig,
    ExtractorCache,
    bench_config,
    build_sampler,
    evaluate_sampler,
)
from repro.experiments.pipeline import train_phase1


@pytest.fixture(scope="module")
def cache():
    return ExtractorCache()


@pytest.fixture(scope="module")
def config():
    return bench_config(phase1_epochs=12)


@pytest.fixture(scope="module")
def artifacts(cache, config):
    return cache.get(config, "ce")


class TestConfig:
    def test_with_overrides_copies(self):
        a = bench_config()
        b = a.with_overrides(dataset="svhn_like")
        assert a.dataset == "cifar10_like"
        assert b.dataset == "svhn_like"

    def test_defaults_sane(self):
        config = ExperimentConfig()
        assert config.k_neighbors == 10
        assert config.finetune_epochs == 10  # the paper's setting

    @pytest.mark.parametrize(
        "name",
        ["ros", "smote", "bsmote", "balsvm", "adasyn", "remix",
         "eos", "eos_away", "cgan", "bagan", "gamo"],
    )
    def test_build_sampler_all_names(self, name):
        sampler = build_sampler(name, k_neighbors=3, random_state=0)
        assert hasattr(sampler, "fit_resample")

    def test_build_sampler_none(self):
        assert build_sampler("none") is None

    def test_build_sampler_unknown(self):
        with pytest.raises(KeyError):
            build_sampler("mixup")

    def test_eos_away_direction(self):
        assert build_sampler("eos_away").direction == "away"


class TestPipeline:
    def test_artifacts_fields(self, artifacts):
        assert artifacts.train_embeddings.shape[0] == len(artifacts.train)
        assert artifacts.test_embeddings.shape[0] == len(artifacts.test)
        assert set(artifacts.baseline_metrics) == {"bac", "gm", "fm"}

    def test_cache_returns_same_object(self, cache, config):
        a = cache.get(config, "ce")
        b = cache.get(config, "ce")
        assert a is b

    def test_cache_distinguishes_losses(self, cache, config):
        a = cache.get(config, "ce")
        b = cache.get(config, "focal")
        assert a is not b

    def test_cache_mutation_refused_outside_owner_process(self, config):
        # Simulate the forked-child view: the pid recorded at
        # construction is not this process's pid.
        foreign = ExtractorCache()
        foreign._owner_pid += 1
        with pytest.raises(RuntimeError, match="owned by process"):
            foreign.get(config, "ce")
        with pytest.raises(RuntimeError, match="prewarm_extractors"):
            foreign.put(config, "ce", object())
        # Read-only probes stay legal from any process.
        assert foreign.contains(config, "ce") is False
        assert foreign.stats()["size"] == 0

    def test_restore_head_resets_weights(self, artifacts):
        original = artifacts.model.classifier.weight.data.copy()
        artifacts.model.classifier.weight.data[...] = 0.0
        artifacts.restore_head()
        np.testing.assert_array_equal(
            artifacts.model.classifier.weight.data, original
        )

    def test_evaluate_sampler_is_order_independent(self, artifacts):
        first = evaluate_sampler(artifacts, "smote")
        evaluate_sampler(artifacts, "eos")
        again = evaluate_sampler(artifacts, "smote")
        assert first == again

    def test_none_returns_baseline(self, artifacts):
        metrics = evaluate_sampler(artifacts, "none")
        assert metrics == artifacts.baseline_metrics

    def test_return_details(self, artifacts):
        details = evaluate_sampler(artifacts, "eos", return_details=True)
        emb, labels = details["resampled"]
        assert len(np.unique(np.bincount(labels))) == 1  # balanced
        assert details["head_weight"].shape[0] == 10

    def test_baseline_gap_rises_with_imbalance(self, artifacts):
        """The per-class gap should correlate with class index (classes
        are ordered by decreasing sample count)."""
        gap = artifacts.baseline_gap()["per_class"]
        classes = np.arange(len(gap))
        correlation = np.corrcoef(classes, gap)[0, 1]
        assert correlation > 0.3


class TestShapeClaims:
    """The paper's robust qualitative claims at tiny scale."""

    def test_resampling_beats_baseline(self, artifacts):
        base = evaluate_sampler(artifacts, "none")["bac"]
        for name in ("smote", "eos"):
            assert evaluate_sampler(artifacts, name)["bac"] > base

    def test_eos_competitive_with_smote(self, artifacts):
        eos = evaluate_sampler(artifacts, "eos")["bac"]
        smote = evaluate_sampler(artifacts, "smote")["bac"]
        assert eos >= smote - 0.08  # EOS must at least be in the same band

    def test_eos_shrinks_minority_gap(self, artifacts, config):
        """Figure-3 claim: EOS reduces the tail-class gap; SMOTE leaves
        the per-class gap curve untouched."""
        from repro.core.gap import generalization_gap

        base = artifacts.baseline_gap()["per_class"]
        tail = slice(len(base) // 2, None)

        smote = build_sampler("smote", k_neighbors=config.k_neighbors)
        emb, labels = smote.fit_resample(
            artifacts.train_embeddings, artifacts.train.labels
        )
        gap_smote = generalization_gap(
            emb, labels, artifacts.test_embeddings, artifacts.test.labels, 10
        )["per_class"]
        np.testing.assert_allclose(gap_smote, base, atol=1e-12)

        eos = build_sampler("eos", k_neighbors=config.k_neighbors)
        emb, labels = eos.fit_resample(
            artifacts.train_embeddings, artifacts.train.labels
        )
        gap_eos = generalization_gap(
            emb, labels, artifacts.test_embeddings, artifacts.test.labels, 10
        )["per_class"]
        assert np.nanmean(gap_eos[tail]) < np.nanmean(base[tail])

    def test_eos_cheaper_than_gan(self, artifacts):
        eos = evaluate_sampler(artifacts, "eos", return_details=True)
        cgan = evaluate_sampler(artifacts, "cgan", return_details=True)
        assert cgan["seconds"] > eos["seconds"]


class TestRunners:
    """Smoke tests: every runner returns its structured payload + report."""

    def test_table4_k_sweep(self, config, cache):
        from repro.experiments import run_table4

        out = run_table4(config, k_values=(3, 8), cache=cache)
        assert set(out["results"]) == {("cifar10_like", 3), ("cifar10_like", 8)}
        assert "Table IV" in out["report"]

    def test_figure4_tp_fp(self, config, cache):
        from repro.experiments import run_figure4

        out = run_figure4(config, cache=cache)
        gaps = out["results"]["cifar10_like"]
        assert gaps["fp"] > gaps["tp"]  # the Figure-4 claim

    def test_figure5_norm_profiles(self, config, cache):
        from repro.experiments import run_figure5

        out = run_figure5(config, losses=("ce",), samplers=("none", "eos"),
                          cache=cache)
        assert ("ce", "eos") in out["profiles"]
        assert len(out["profiles"][("ce", "none")]) == 10

    def test_figure7_curves(self, config, cache):
        from repro.experiments import run_figure7

        out = run_figure7(config, epochs=3, samplers=("eos",), cache=cache)
        history = out["curves"]["eos"]
        assert len(history) == 3
        assert "test_bac" in history[0]

    def test_table2_structure(self, config, cache):
        from repro.experiments import run_table2

        out = run_table2(
            config, losses=("ce",), samplers=("none", "eos"), cache=cache
        )
        assert ("cifar10_like", "ce", "eos") in out["results"]
        assert "BAC" in out["report"]
