"""Tests for the GAN-based over-sampling baselines."""

import numpy as np
import pytest

from repro.gans import (
    BAGAN,
    CGAN,
    GAMO,
    FeatureScaler,
    GanCore,
    MLP,
    bce_loss,
    fit_feature_scaler,
)
from repro.tensor import Tensor


@pytest.fixture
def rng():
    return np.random.default_rng(91)


@pytest.fixture
def blob_data(rng):
    x = np.concatenate(
        [rng.normal([0, 0], 0.6, (80, 2)), rng.normal([4, 4], 0.6, (10, 2))]
    )
    y = np.array([0] * 80 + [1] * 10)
    return x, y


FAST = dict(epochs=40, random_state=1)


class TestMLPAndBCE:
    def test_mlp_shapes(self, rng):
        net = MLP([4, 8, 2], rng=rng)
        out = net(Tensor(rng.normal(size=(5, 4))))
        assert out.shape == (5, 2)

    def test_mlp_output_activations(self, rng):
        sig = MLP([3, 4, 1], out_activation="sigmoid", rng=rng)
        out = sig(Tensor(rng.normal(size=(10, 3)))).data
        assert np.all((out > 0) & (out < 1))
        tanh = MLP([3, 4, 2], out_activation="tanh", rng=rng)
        out = tanh(Tensor(rng.normal(size=(10, 3)))).data
        assert np.all(np.abs(out) < 1)

    def test_mlp_too_few_sizes(self):
        with pytest.raises(ValueError):
            MLP([4])

    def test_bce_matches_formula(self):
        probs = Tensor(np.array([[0.9], [0.1]]))
        targets = np.array([[1.0], [0.0]])
        expected = -(np.log(0.9) + np.log(0.9)) / 2
        assert float(bce_loss(probs, targets).data) == pytest.approx(expected)

    def test_bce_gradient_flows(self, rng):
        logits = Tensor(rng.normal(size=(4, 1)), requires_grad=True)
        bce_loss(logits.sigmoid(), np.ones((4, 1))).backward()
        assert logits.grad is not None


class TestFeatureScaler:
    def test_roundtrip(self, rng):
        x = rng.normal(3.0, 5.0, size=(50, 4))
        scaler = fit_feature_scaler(x)
        np.testing.assert_allclose(scaler.inverse(scaler.transform(x)), x)

    def test_range_is_unit(self, rng):
        x = rng.normal(size=(50, 3))
        t = fit_feature_scaler(x).transform(x)
        assert t.min() == pytest.approx(-1.0)
        assert t.max() == pytest.approx(1.0)

    def test_constant_feature_no_nan(self):
        x = np.ones((10, 2))
        scaler = fit_feature_scaler(x)
        assert np.all(np.isfinite(scaler.transform(x)))


class TestGanCore:
    def test_training_step_runs_and_records(self, rng):
        gen = MLP([4, 8, 2], out_activation="tanh", rng=rng)
        disc = MLP([2, 8, 1], out_activation="sigmoid", rng=rng)
        gan = GanCore(gen, disc, latent_dim=4, seed=0)
        d_loss, g_loss = gan.train_step(rng.normal(size=(16, 2)))
        assert np.isfinite(d_loss) and np.isfinite(g_loss)
        assert len(gan.d_losses) == 1

    def test_generate_shape(self, rng):
        gen = MLP([4, 8, 3], out_activation="tanh", rng=rng)
        disc = MLP([3, 8, 1], out_activation="sigmoid", rng=rng)
        gan = GanCore(gen, disc, latent_dim=4, seed=0)
        assert gan.generate(7).shape == (7, 3)

    def test_conditional_path(self, rng):
        """Label-conditioned generation: generator and discriminator both
        receive a one-hot condition appended to their inputs."""
        num_classes = 2
        gen = MLP([4 + num_classes, 16, 2], out_activation="tanh", rng=rng)
        disc = MLP([2 + num_classes, 16, 1], out_activation="sigmoid", rng=rng)
        gan = GanCore(gen, disc, latent_dim=4, seed=0)
        real = rng.normal(size=(8, 2)).clip(-1, 1)
        cond = np.eye(num_classes)[rng.integers(0, num_classes, 8)]
        d_loss, g_loss = gan.train_step(real, cond_real=cond, cond_fake=cond)
        assert np.isfinite(d_loss) and np.isfinite(g_loss)
        out = gan.generate(5, cond=np.eye(num_classes)[np.zeros(5, int)])
        assert out.shape == (5, 2)

    def test_learns_simple_distribution(self, rng):
        """After training on a shifted blob, generated samples should move
        toward the real mean."""
        real = rng.normal(0.5, 0.2, size=(200, 2)).clip(-1, 1)
        gen = MLP([4, 16, 2], out_activation="tanh", rng=rng)
        disc = MLP([2, 16, 1], out_activation="sigmoid", rng=rng)
        gan = GanCore(gen, disc, latent_dim=4, lr=5e-3, seed=0)
        before = np.abs(gan.generate(200).mean(axis=0) - 0.5).mean()
        for _ in range(150):
            idx = gan.rng.integers(0, 200, 32)
            gan.train_step(real[idx])
        after = np.abs(gan.generate(200).mean(axis=0) - 0.5).mean()
        assert after < before


class TestGanSamplers:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: CGAN(**FAST),
            lambda: BAGAN(ae_epochs=60, gan_epochs=30, random_state=1),
            lambda: GAMO(**FAST),
        ],
        ids=["cgan", "bagan", "gamo"],
    )
    def test_balances_and_preserves_originals(self, factory, blob_data):
        x, y = blob_data
        sampler = factory()
        xr, yr = sampler.fit_resample(x, y)
        np.testing.assert_array_equal(np.bincount(yr), [80, 80])
        np.testing.assert_array_equal(xr[: len(x)], x)
        assert sampler.fit_seconds > 0

    def test_cgan_trains_one_model_per_class(self, rng):
        x = np.concatenate(
            [rng.normal(0, 1, (30, 2)), rng.normal(3, 1, (6, 2)),
             rng.normal(-3, 1, (4, 2))]
        )
        y = np.array([0] * 30 + [1] * 6 + [2] * 4)
        sampler = CGAN(**FAST)
        sampler.fit_resample(x, y)
        assert sampler.models_trained == 2  # one per deficient class

    def test_cgan_synthetic_near_class(self, blob_data):
        x, y = blob_data
        xr, yr = CGAN(epochs=120, random_state=0).fit_resample(x, y)
        synth = xr[len(x):]
        # Synthetic minority samples nearer the minority centroid.
        d_min = np.linalg.norm(synth - [4, 4], axis=1).mean()
        d_maj = np.linalg.norm(synth - [0, 0], axis=1).mean()
        assert d_min < d_maj

    def test_gamo_stays_in_convex_hull(self, blob_data):
        """GAMO's defining constraint: synthetic points are convex
        combinations of real minority points, hence inside the bounding box
        (contrast with EOS which escapes it)."""
        x, y = blob_data
        xr, yr = GAMO(**FAST).fit_resample(x, y)
        synth = xr[len(x):]
        lo = x[y == 1].min(axis=0) - 1e-9
        hi = x[y == 1].max(axis=0) + 1e-9
        assert np.all(synth >= lo) and np.all(synth <= hi)

    def test_gamo_singleton_duplicates(self, rng):
        x = np.concatenate([rng.normal(size=(10, 2)), [[5.0, 5.0]]])
        y = np.array([0] * 10 + [1])
        xr, yr = GAMO(**FAST).fit_resample(x, y)
        np.testing.assert_allclose(xr[11:], [[5.0, 5.0]] * 9)

    def test_bagan_latent_gaussians_per_class(self, blob_data, rng):
        x, y = blob_data
        sampler = BAGAN(ae_epochs=60, gan_epochs=0, random_state=0)
        from repro.gans.base import fit_feature_scaler

        scaler = fit_feature_scaler(x)
        encoder, _ = sampler._pretrain_autoencoder(
            scaler.transform(x), np.random.default_rng(0)
        )
        gaussians = sampler._class_latent_gaussians(encoder, scaler.transform(x), y)
        assert set(gaussians) == {0, 1}
        mean0, std0 = gaussians[0]
        assert mean0.shape == (sampler.latent_dim,)
        assert np.all(std0 > 0)

    def test_balanced_input_noop(self, rng):
        x = rng.normal(size=(20, 2))
        y = np.array([0, 1] * 10)
        for sampler in (CGAN(**FAST), GAMO(**FAST)):
            xr, yr = sampler.fit_resample(x, y)
            assert len(xr) == 20

    def test_gans_cost_more_than_eos(self, blob_data):
        """The paper's efficiency argument: GAN resampling must cost
        meaningfully more wall-clock than EOS on the same data."""
        import time

        from repro.core import EOS

        x, y = blob_data
        start = time.perf_counter()
        EOS(k_neighbors=5, random_state=0).fit_resample(x, y)
        eos_time = time.perf_counter() - start
        sampler = CGAN(epochs=150, random_state=0)
        sampler.fit_resample(x, y)
        assert sampler.fit_seconds > 2 * eos_time
