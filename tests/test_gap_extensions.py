"""Tests for the complementary gap measures (quantile gap, coverage gap)."""

import numpy as np
import pytest

from repro.core import coverage_gap, generalization_gap, quantile_gap


@pytest.fixture
def rng():
    return np.random.default_rng(121)


class TestQuantileGap:
    def test_zero_against_itself(self, rng):
        f = rng.normal(size=(100, 5))
        y = rng.integers(0, 2, 100)
        out = quantile_gap(f, y, f, y)
        np.testing.assert_allclose(out["per_class"], 0.0, atol=1e-12)

    def test_robust_to_single_outlier(self, rng):
        """One extreme test point blows up the min/max gap but barely
        moves the quantile gap — the motivation for this measure."""
        train = rng.normal(size=(200, 4))
        y_train = np.zeros(200, int)
        test = rng.normal(size=(200, 4))
        test[0] = 100.0  # single outlier
        y_test = np.zeros(200, int)
        hard = generalization_gap(train, y_train, test, y_test, 1)["mean"]
        soft = quantile_gap(train, y_train, test, y_test, 1, q=0.05)["mean"]
        assert hard > 10 * max(soft, 1e-9)

    def test_minority_class_larger_gap(self, rng):
        test = rng.normal(size=(1000, 8))
        test_y = np.array([0, 1] * 500)
        train = np.concatenate([rng.normal(size=(400, 8)), rng.normal(size=(6, 8))])
        train_y = np.array([0] * 400 + [1] * 6)
        out = quantile_gap(train, train_y, test, test_y)
        assert out["per_class"][1] > out["per_class"][0]

    def test_invalid_q(self, rng):
        f = rng.normal(size=(10, 2))
        y = np.zeros(10, int)
        with pytest.raises(ValueError):
            quantile_gap(f, y, f, y, q=0.7)


class TestCoverageGap:
    def test_full_coverage_zero(self, rng):
        train = rng.uniform(-1, 1, size=(500, 3))
        y_train = np.zeros(500, int)
        test = rng.uniform(-0.5, 0.5, size=(100, 3))
        y_test = np.zeros(100, int)
        out = coverage_gap(train, y_train, test, y_test)
        assert out["mean"] == 0.0

    def test_disjoint_distributions_full_gap(self, rng):
        train = rng.uniform(0, 1, size=(50, 2))
        test = rng.uniform(10, 11, size=(50, 2))
        y = np.zeros(50, int)
        out = coverage_gap(train, y, test, y)
        assert out["mean"] == 1.0

    def test_bounded_unit_interval(self, rng):
        f = rng.normal(size=(80, 4))
        y = rng.integers(0, 3, 80)
        out = coverage_gap(f[:40], y[:40], f[40:], y[40:], num_classes=3)
        valid = out["per_class"][~np.isnan(out["per_class"])]
        assert np.all((valid >= 0) & (valid <= 1))

    def test_min_violations_monotone(self, rng):
        train = rng.normal(size=(100, 6))
        test = rng.normal(0, 2.0, size=(100, 6))
        y = np.zeros(100, int)
        strict = coverage_gap(train, y, test, y, min_violations=1)["mean"]
        lenient = coverage_gap(train, y, test, y, min_violations=3)["mean"]
        assert lenient <= strict

    def test_invalid_min_violations(self, rng):
        f = rng.normal(size=(10, 2))
        y = np.zeros(10, int)
        with pytest.raises(ValueError):
            coverage_gap(f, y, f, y, min_violations=0)

    def test_minority_less_covered(self, rng):
        """Sparse minority training sets cover less of the test mass —
        the coverage restatement of the paper's gap claim."""
        test = rng.normal(size=(2000, 8))
        test_y = np.array([0, 1] * 1000)
        train = np.concatenate(
            [rng.normal(size=(500, 8)), rng.normal(size=(5, 8))]
        )
        train_y = np.array([0] * 500 + [1] * 5)
        out = coverage_gap(train, train_y, test, test_y)
        assert out["per_class"][1] > out["per_class"][0]

    def test_eos_improves_coverage(self, rng):
        """EOS's expansion increases the minority's coverage of the test
        distribution."""
        from repro.core import EOS

        train = np.concatenate(
            [rng.normal(0, 1, (300, 6)), rng.normal(0.8, 0.4, (8, 6))]
        )
        train_y = np.array([0] * 300 + [1] * 8)
        test = np.concatenate(
            [rng.normal(0, 1, (300, 6)), rng.normal(0.8, 1.0, (300, 6))]
        )
        test_y = np.array([0] * 300 + [1] * 300)
        before = coverage_gap(train, train_y, test, test_y)["per_class"][1]
        emb, labels = EOS(k_neighbors=15, random_state=0).fit_resample(
            train, train_y
        )
        after = coverage_gap(emb, labels, test, test_y)["per_class"][1]
        assert after < before
