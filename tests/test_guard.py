"""Tests for the execution-substrate hardening layer (repro.guard).

Three pillars, each tested from unit level up to the real Table-II
sweep:

1. **Watchdog** — a hung worker is SIGKILLed at its task deadline and
   re-dispatched under the same derived seed, so a hung-then-killed
   sweep is bit-identical to one that never hung.
2. **Artifact integrity** — a corrupted phase-1 checkpoint is caught by
   digest verification on resume, quarantined with a structured reason,
   and transparently recomputed (or raised, under ``strict``).
3. **Circuit breaker** — N equivalent failures open a per-configuration
   breaker that settles the remaining matching cells as
   ``FAILED(circuit_open)`` without invoking their thunks.
"""

import json
import os
import signal
import time

import numpy as np
import pytest

from repro.experiments import ExtractorCache, bench_config, run_table2
from repro.guard import (
    CircuitBreaker,
    IntegrityFailure,
    default_breaker_key,
    failure_signature,
    quarantine,
    report_phase,
    verify_artifact,
)
from repro.parallel import (
    Skip,
    TaskFailure,
    get_default_workers,
    parallel_map,
    run_cells,
    set_default_workers,
)
from repro.parallel.pool import _exit_status_of
from repro.resilience import (
    CellFailure,
    CheckpointCorruptError,
    FaultPlan,
    RetryPolicy,
    RunRegistry,
    SimulatedKill,
    inject_faults,
)
from repro.telemetry import (
    MetricsRegistry,
    Tracer,
    set_metrics,
    set_tracer,
)
from repro.telemetry.summarize import render_trace_report, summarize_trace
from repro.utils.serialization import _flip_bytes, save_arrays

MICRO = bench_config(phase1_epochs=2, finetune_epochs=2,
                     model_kwargs={"width": 4})
SAMPLERS = ("none", "smote", "eos")
KILL_CELL = "t2/cifar10_like/ce/eos"

#: Watchdog deadline for sweep-scale tests: ~30x a MICRO cell's wall
#: time, so a clean cell never trips it even on a loaded machine.
SWEEP_DEADLINE = 3.0


@pytest.fixture(autouse=True)
def _clean_global_state():
    """Telemetry uninstalled and worker default reset around every test."""
    set_tracer(None)
    set_metrics(None)
    previous = get_default_workers()
    yield
    set_tracer(None)
    set_metrics(None)
    set_default_workers(previous)


def run_sweep(cache, registry=None, retry_policy=None, workers=None):
    return run_table2(
        MICRO,
        losses=("ce",),
        samplers=SAMPLERS,
        cache=cache,
        registry=registry,
        retry_policy=retry_policy,
        workers=workers,
    )


@pytest.fixture(scope="module")
def reference():
    """The fault-free run every guard scenario is compared to."""
    return run_sweep(ExtractorCache())


# ----------------------------------------------------------------------
# Failure signatures and breaker keys
# ----------------------------------------------------------------------
class TestFailureSignature:
    def test_numbers_are_collapsed(self):
        assert (failure_signature("RuntimeError", "boom at epoch 3")
                == failure_signature("RuntimeError", "boom at epoch 7"))

    def test_type_distinguishes(self):
        assert (failure_signature("RuntimeError", "boom")
                != failure_signature("ValueError", "boom"))

    def test_empty_reason_is_just_the_type(self):
        assert failure_signature("DivergenceError") == "DivergenceError"

    def test_long_messages_truncate(self):
        sig = failure_signature("E", "x" * 500)
        assert len(sig) <= len("E: ") + 96

    def test_multiline_uses_first_line(self):
        assert (failure_signature("E", "first\nsecond")
                == failure_signature("E", "first"))


class TestDefaultBreakerKey:
    def test_dataset_segment_is_wildcarded(self):
        assert default_breaker_key("t2/cifar10_like/ce/smote") == "t2/*/ce/smote"
        assert (default_breaker_key("t2/mnist_like/ce/smote")
                == default_breaker_key("t2/cifar10_like/ce/smote"))

    def test_short_ids_are_their_own_key(self):
        assert default_breaker_key("warmup") == "warmup"
        assert default_breaker_key("a/b") == "a/b"


# ----------------------------------------------------------------------
# CircuitBreaker state machine
# ----------------------------------------------------------------------
class TestCircuitBreaker:
    def test_opens_on_nth_equivalent_failure(self):
        breaker = CircuitBreaker(threshold=3)
        assert breaker.record_failure("k", "E", "boom 1") is None
        assert breaker.record_failure("k", "E", "boom 2") is None
        opened = breaker.record_failure("k", "E", "boom 3")
        assert opened == failure_signature("E", "boom 3")
        assert breaker.is_open("k")
        assert breaker.open_signature("k") == opened

    def test_distinct_signatures_count_separately(self):
        breaker = CircuitBreaker(threshold=2)
        breaker.record_failure("k", "E", "boom")
        breaker.record_failure("k", "F", "other")
        assert not breaker.is_open("k")

    def test_distinct_keys_count_separately(self):
        breaker = CircuitBreaker(threshold=2)
        breaker.record_failure("a", "E", "boom")
        breaker.record_failure("b", "E", "boom")
        assert not breaker.is_open("a") and not breaker.is_open("b")

    def test_count_reports_a_whole_retry_budget_at_once(self):
        breaker = CircuitBreaker(threshold=3)
        assert breaker.record_failure("k", "E", "boom", count=3) is not None

    def test_recording_after_open_is_a_noop(self):
        breaker = CircuitBreaker(threshold=1)
        first = breaker.record_failure("k", "E", "boom")
        assert first is not None
        assert breaker.record_failure("k", "E", "boom") is None
        assert breaker.open_signature("k") == first

    def test_threshold_must_be_positive(self):
        with pytest.raises(ValueError):
            CircuitBreaker(threshold=0)

    def test_open_event_and_counter_emitted(self):
        tracer, metrics = Tracer(), MetricsRegistry()
        set_tracer(tracer)
        set_metrics(metrics)
        CircuitBreaker(threshold=1).record_failure("k", "E", "boom")
        events = [r for r in tracer.records if r.get("type") == "event"]
        assert any(e["name"] == "guard.breaker_opened" for e in events)
        assert metrics.counter("guard.breaker_open").value == 1

    def test_state_persists_through_registry_store(self, tmp_path):
        registry = RunRegistry(tmp_path / "run")
        breaker = CircuitBreaker(threshold=1, store=registry)
        breaker.record_failure("t2/*/ce/eos", "E", "boom")

        revived = CircuitBreaker(
            threshold=1, store=RunRegistry(tmp_path / "run")
        )
        assert revived.is_open("t2/*/ce/eos")
        assert revived.open_breakers() == breaker.open_breakers()

        revived.reset()
        fresh = CircuitBreaker(
            threshold=1, store=RunRegistry(tmp_path / "run")
        )
        assert not fresh.is_open("t2/*/ce/eos")


# ----------------------------------------------------------------------
# Breaker woven into cell execution (serial and parallel)
# ----------------------------------------------------------------------
def _failing_tasks(n, calls, marker_dir=None):
    """(cell_id, thunk) pairs that log invocation and always fail.

    The cell ids share one breaker family (``t9/*/ce/x``): same loss and
    sampler, different datasets — the systematic-failure shape the
    breaker exists to catch.
    """
    tasks = []
    for i in range(n):
        cell_id = "t9/ds%d/ce/x" % i

        def thunk(_attempt, cell_id=cell_id):
            calls.append(cell_id)
            if marker_dir is not None:
                (marker_dir / ("ran_%s" % cell_id.split("/")[1])).touch()
            raise RuntimeError("systematic boom %s" % cell_id)

        tasks.append((cell_id, thunk))
    return tasks


class TestBreakerInRunCellsSerial:
    def test_remaining_cells_short_circuit_without_running(self):
        calls = []
        breaker = CircuitBreaker(threshold=3)
        results = run_cells(_failing_tasks(6, calls), breaker=breaker,
                            max_workers=1)

        assert calls == ["t9/ds0/ce/x", "t9/ds1/ce/x", "t9/ds2/ce/x"]
        assert breaker.is_open("t9/*/ce/x")
        for failure in results[:3]:
            assert isinstance(failure, CellFailure)
            assert failure.error_type == "RuntimeError"
        for failure in results[3:]:
            assert isinstance(failure, CellFailure)
            assert failure.error_type == "circuit_open"
            assert failure.attempts == 0
            assert failure.label().startswith("FAILED(circuit_open:")

    def test_short_circuits_are_recorded_failed_in_registry(self, tmp_path):
        registry = RunRegistry(tmp_path / "run")
        run_cells(_failing_tasks(5, []), breaker=CircuitBreaker(threshold=2),
                  registry=registry, max_workers=1)
        statuses = registry.cell_statuses()
        assert len(statuses) == 5
        assert all(status == "failed" for status in statuses.values())
        payload = registry.manifest["cells"]["t9/ds4/ce/x"]["payload"]
        assert payload["error_type"] == "circuit_open"

    def test_retry_budget_counts_as_equivalent_failures(self):
        # One cell exhausting a 3-attempt retry budget reports count=3,
        # enough to trip a threshold-3 breaker on its own.
        calls = []
        breaker = CircuitBreaker(threshold=3)
        run_cells(_failing_tasks(2, calls), breaker=breaker,
                  retry_policy=RetryPolicy(max_retries=2,
                                           retry_on=(RuntimeError,)),
                  max_workers=1)
        assert breaker.is_open("t9/*/ce/x")
        assert calls.count("t9/ds0/ce/x") == 3  # initial + 2 retries
        assert calls.count("t9/ds1/ce/x") == 0  # short-circuited


class TestBreakerInRunCellsParallel:
    def test_skipped_cells_never_fork_a_worker(self, tmp_path):
        breaker = CircuitBreaker(threshold=2)
        results = run_cells(
            _failing_tasks(6, [], marker_dir=tmp_path),
            breaker=breaker,
            max_workers=2,
        )

        # Workers 0 and 1 fail; the second recorded failure opens the
        # breaker, so only task 2 (already launched) still runs — the
        # marker files prove tasks 3..5 never executed anywhere.
        ran = sorted(p.name for p in tmp_path.glob("ran_*"))
        assert ran == ["ran_ds0", "ran_ds1", "ran_ds2"]
        genuine = [r for r in results if r.error_type == "RuntimeError"]
        skipped = [r for r in results if r.error_type == "circuit_open"]
        assert len(genuine) == 3 and len(skipped) == 3
        assert results[3].error_type == "circuit_open"
        assert all(f.attempts == 0 for f in skipped)

    def test_parallel_short_circuits_match_serial_records(self, tmp_path):
        serial_reg = RunRegistry(tmp_path / "serial")
        run_cells(_failing_tasks(6, []), breaker=CircuitBreaker(threshold=2),
                  registry=serial_reg, max_workers=1)
        parallel_reg = RunRegistry(tmp_path / "parallel")
        run_cells(_failing_tasks(6, []), breaker=CircuitBreaker(threshold=2),
                  registry=parallel_reg, max_workers=2)
        skipped = {
            cid: entry["payload"]
            for cid, entry in parallel_reg.manifest["cells"].items()
            if entry["payload"]["error_type"] == "circuit_open"
        }
        for cid, payload in skipped.items():
            assert serial_reg.manifest["cells"][cid]["payload"] == payload


# ----------------------------------------------------------------------
# Signal-aware exit-status decoding (the pre-3.9 fallback fix)
# ----------------------------------------------------------------------
class TestExitStatusDecoding:
    def test_signal_killed_status_decodes_negative(self):
        # Raw wait status 9 == "terminated by SIGKILL"; the naive
        # ``status >> 8`` decoded this as a clean exit 0.
        assert _exit_status_of(9) == -9
        assert _exit_status_of(signal.SIGSEGV) == -signal.SIGSEGV

    def test_clean_exit_decodes_exit_code(self):
        assert _exit_status_of(0) == 0
        assert _exit_status_of(99 << 8) == 99

    def test_sigkilled_worker_reports_negative_exit_status(self):
        def fn(item, _seed):
            if item == 1:
                os.kill(os.getpid(), signal.SIGKILL)
            return item

        out = parallel_map(fn, range(3), max_workers=2, on_error="return")
        failure = out[1]
        assert isinstance(failure, TaskFailure)
        assert failure.reason == "WorkerDied"
        assert failure.exit_status == -signal.SIGKILL
        assert "-9" in failure.message


# ----------------------------------------------------------------------
# Watchdog: hung workers are killed, re-dispatched, and attributed
# ----------------------------------------------------------------------
class TestWatchdog:
    def test_hung_task_redispatches_bit_identical(self):
        fn = lambda item, seed: (item * 10, seed)
        clean = parallel_map(fn, range(4), max_workers=2, seed_root=11)

        plan = FaultPlan()
        plan.inject("worker.task", action="hang", seconds=30,
                    when={"index": 1, "dispatch": 0})
        with inject_faults(plan):
            out = parallel_map(fn, range(4), max_workers=2, seed_root=11,
                               task_deadline=0.5, deadline_retries=1)
        assert out == clean

    def test_persistent_hang_becomes_watchdog_killed(self):
        tracer = Tracer()
        set_tracer(tracer)
        plan = FaultPlan()
        plan.inject("worker.task", action="hang", seconds=30,
                    when={"index": 1}, times=None)
        with inject_faults(plan):
            out = parallel_map(lambda item, _seed: item, range(3),
                               max_workers=2, task_deadline=0.4,
                               deadline_retries=0, on_error="return")

        assert out[0] == 0 and out[2] == 2
        failure = out[1]
        assert isinstance(failure, TaskFailure)
        assert failure.reason == "WatchdogKilled"
        assert "deadline" in failure.message
        kills = [r for r in tracer.records
                 if r.get("type") == "event"
                 and r["name"] == "guard.watchdog_kill"]
        assert len(kills) == 1
        assert kills[0]["attrs"]["elapsed"] >= 0.4

    def test_failure_message_names_last_reported_phase(self):
        def fn(item, _seed):
            if item == 1:
                report_phase("crunching")
                time.sleep(30)
            return item

        out = parallel_map(fn, range(2), max_workers=2, task_deadline=0.5,
                           deadline_retries=0, on_error="return")
        assert out[1].reason == "WatchdogKilled"
        assert "crunching" in out[1].message

    def test_retries_exhausted_after_repeated_hangs(self):
        # times=None hangs every dispatch; one re-dispatch is allowed,
        # then the task settles with the dispatch count in the message.
        plan = FaultPlan()
        plan.inject("worker.task", action="hang", seconds=30,
                    when={"index": 0}, times=None)
        with inject_faults(plan):
            out = parallel_map(lambda item, _seed: item, range(2),
                               max_workers=2, task_deadline=0.4,
                               deadline_retries=1, on_error="return")
        assert out[0].reason == "WatchdogKilled"
        assert "2 dispatch(es)" in out[0].message

    def test_serial_mode_ignores_deadline(self):
        # A serial pool has no supervisor process; the deadline is
        # documented as parallel-only and must not break serial runs.
        out = parallel_map(lambda item, _seed: item, range(3),
                           max_workers=1, task_deadline=0.001)
        assert out == [0, 1, 2]


class TestPreDispatchSkip:
    def test_serial_skip_settles_without_calling_fn(self):
        calls = []

        def fn(item, _seed):
            calls.append(item)
            return item

        out = parallel_map(
            fn, range(4), max_workers=1,
            pre_dispatch=lambda item, i: Skip("held:%d" % i) if i % 2 else None,
        )
        assert out == [0, "held:1", 2, "held:3"]
        assert calls == [0, 2]

    def test_parallel_skip_settles_without_forking(self, tmp_path):
        def fn(item, _seed):
            (tmp_path / ("ran_%d" % item)).touch()
            return item

        out = parallel_map(
            fn, range(4), max_workers=2,
            pre_dispatch=lambda item, i: Skip(-item) if item >= 2 else None,
        )
        assert out == [0, 1, -2, -3]
        assert sorted(p.name for p in tmp_path.glob("ran_*")) == [
            "ran_0", "ran_1",
        ]

    def test_non_skip_return_is_a_type_error(self):
        with pytest.raises(TypeError, match="pre_dispatch"):
            parallel_map(lambda item, _seed: item, range(2), max_workers=1,
                         pre_dispatch=lambda item, i: "oops")


# ----------------------------------------------------------------------
# Artifact integrity: verification, quarantine, strict resume
# ----------------------------------------------------------------------
class TestVerifyArtifact:
    def test_fresh_artifact_verifies(self, tmp_path):
        path = save_arrays(tmp_path / "a.npz", {"x": np.arange(4)})
        assert verify_artifact(path) is None

    def test_missing_artifact_fails(self, tmp_path):
        failure = verify_artifact(tmp_path / "gone.npz")
        assert isinstance(failure, IntegrityFailure)
        assert failure.reason == "missing"

    def test_corrupted_artifact_fails_with_both_digests(self, tmp_path):
        path = save_arrays(tmp_path / "a.npz", {"x": np.arange(64)})
        _flip_bytes(path)
        failure = verify_artifact(path)
        assert failure.reason == "digest mismatch"
        assert failure.expected and failure.actual
        assert failure.expected != failure.actual

    def test_legacy_artifact_without_sidecar_passes(self, tmp_path):
        path = save_arrays(tmp_path / "a.npz", {"x": np.arange(4)})
        os.unlink(path + ".sha256")
        assert verify_artifact(path) is None


class TestQuarantine:
    def test_moves_set_and_writes_reason(self, tmp_path):
        root = tmp_path / "run"
        root.mkdir()
        path = save_arrays(root / "bad.npz", {"x": np.arange(8)})
        failure = IntegrityFailure(path, "digest mismatch",
                                   expected="aa", actual="bb")
        target = quarantine(root, [path], "digest mismatch", [failure])

        assert target is not None and not os.path.exists(path)
        assert not os.path.exists(path + ".sha256")
        with open(os.path.join(target, "reason.json")) as handle:
            reason = json.load(handle)
        assert reason["reason"] == "digest mismatch"
        assert reason["files"][0]["expected"] == "aa"
        assert os.path.exists(os.path.join(target, "bad.npz"))
        assert os.path.exists(os.path.join(target, "bad.npz.sha256"))

    def test_repeat_quarantines_get_numbered_slots(self, tmp_path):
        root = tmp_path / "run"
        root.mkdir()
        targets = []
        for _ in range(2):
            path = save_arrays(root / "bad.npz", {"x": np.arange(8)})
            targets.append(quarantine(root, [path], "digest mismatch"))
        assert targets[0].endswith("bad.npz.0")
        assert targets[1].endswith("bad.npz.1")

    def test_nothing_to_move_returns_none(self, tmp_path):
        assert quarantine(tmp_path, [tmp_path / "gone.npz"], "missing") is None


def _save_tiny_phase1(registry, fingerprint="deadbeef"):
    rng = np.random.default_rng(7)
    registry.save_phase1(
        fingerprint,
        {"w": rng.normal(size=(4, 4))},
        {"head.w": rng.normal(size=(4, 2))},
        rng.normal(size=(6, 4)), np.arange(6) % 2,
        rng.normal(size=(3, 4)), np.arange(3) % 2,
        {"loss": "ce"},
    )
    return fingerprint


class TestResumeVerification:
    def test_intact_set_resumes(self, tmp_path):
        registry = RunRegistry(tmp_path / "run")
        fp = _save_tiny_phase1(registry)
        assert RunRegistry(tmp_path / "run").has_phase1(fp)

    def test_corrupt_set_quarantined_and_recomputed(self, tmp_path):
        registry = RunRegistry(tmp_path / "run")
        fp = _save_tiny_phase1(registry)
        _flip_bytes(tmp_path / "run" / "phase1" / fp / "train_emb.npz")

        resumed = RunRegistry(tmp_path / "run")
        assert resumed.has_phase1(fp) is False
        assert fp not in resumed.manifest["phase1"]
        # ... and the drop is durable, not just in-memory.
        assert fp not in RunRegistry(tmp_path / "run").manifest["phase1"]

        quarantined = list((tmp_path / "run" / "quarantine").iterdir())
        assert len(quarantined) == 1
        with open(quarantined[0] / "reason.json") as handle:
            reason = json.load(handle)
        assert "digest mismatch" in reason["reason"]
        assert (quarantined[0] / fp / "train_emb.npz").exists()

    def test_strict_resume_raises_instead(self, tmp_path):
        registry = RunRegistry(tmp_path / "run")
        fp = _save_tiny_phase1(registry)
        bad = tmp_path / "run" / "phase1" / fp / "head.npz"
        _flip_bytes(bad)

        strict = RunRegistry(tmp_path / "run", strict=True)
        with pytest.raises(CheckpointCorruptError) as excinfo:
            strict.has_phase1(fp)
        assert str(bad) in str(excinfo.value)
        assert excinfo.value.expected is not None
        # Strict mode preserves the evidence: nothing was quarantined.
        assert not (tmp_path / "run" / "quarantine").exists()
        assert fp in strict.manifest["phase1"]


# ----------------------------------------------------------------------
# End-to-end determinism under injected faults (real Table-II sweep)
# ----------------------------------------------------------------------
class TestSweepUnderFaults:
    def test_hung_cell_watchdog_killed_and_bit_identical(self, reference):
        plan = FaultPlan()
        plan.inject("worker.task", action="hang", seconds=60,
                    when={"task": KILL_CELL, "dispatch": 0})
        tracer = Tracer()
        set_tracer(tracer)
        with inject_faults(plan):
            out = run_sweep(
                ExtractorCache(),
                retry_policy=RetryPolicy(
                    max_retries=1, task_deadline=SWEEP_DEADLINE
                ),
                workers=2,
            )
        assert out["results"] == reference["results"]
        assert out["report"] == reference["report"]
        kills = [r for r in tracer.records
                 if r.get("type") == "event"
                 and r["name"] == "guard.watchdog_kill"]
        assert len(kills) == 1
        assert kills[0]["attrs"]["task"] == KILL_CELL

    def test_corrupted_checkpoint_quarantined_on_resume(self, tmp_path,
                                                        reference):
        plan = FaultPlan()
        plan.inject("artifact.saved", action="corrupt",
                    when={"name": "train_emb.npz"})
        plan.inject("sweep.cell", action="kill", when={"cell": KILL_CELL})
        registry = RunRegistry(tmp_path / "run")
        with inject_faults(plan):
            with pytest.raises(SimulatedKill):
                run_sweep(ExtractorCache(registry=registry),
                          registry=registry)

        # Resume with no faults: verification catches the corrupted
        # embedding artifact, quarantines the whole phase-1 set, and the
        # sweep recomputes it — landing on the reference bit for bit.
        resumed = run_sweep(
            ExtractorCache(registry=RunRegistry(tmp_path / "run")),
            registry=RunRegistry(tmp_path / "run"),
        )
        assert resumed["results"] == reference["results"]

        quarantined = list((tmp_path / "run" / "quarantine").iterdir())
        assert len(quarantined) == 1
        with open(quarantined[0] / "reason.json") as handle:
            reason = json.load(handle)
        assert "digest mismatch" in reason["reason"]
        moved = list(quarantined[0].rglob("train_emb.npz"))
        assert len(moved) == 1


# ----------------------------------------------------------------------
# Trace summarizer: the guard section of repro-trace
# ----------------------------------------------------------------------
GUARD_RECORDS = [
    {"type": "event", "ts": 1.0, "depth": 0, "name": "guard.watchdog_kill",
     "attrs": {"task": "t2/cifar10_like/ce/eos", "elapsed": 2.5,
               "phase": "cell:t2/cifar10_like/ce/eos", "dispatch": 0}},
    {"type": "event", "ts": 2.0, "depth": 0, "name": "guard.quarantined",
     "attrs": {"reason": "digest mismatch", "target": "run/quarantine/x.0",
               "files": 2}},
    {"type": "event", "ts": 3.0, "depth": 0, "name": "guard.breaker_opened",
     "attrs": {"key": "t2/*/ce/eos", "signature": "RuntimeError: boom #",
               "failures": 3}},
    {"type": "event", "ts": 4.0, "depth": 0,
     "name": "guard.breaker_short_circuit",
     "attrs": {"cell": "t2/mnist_like/ce/eos", "key": "t2/*/ce/eos",
               "signature": "RuntimeError: boom #"}},
]


class TestTraceGuardSection:
    def test_summary_collects_guard_events(self):
        guard = summarize_trace(GUARD_RECORDS)["guard"]
        assert guard["watchdog_kills"][0]["task"] == "t2/cifar10_like/ce/eos"
        assert guard["watchdog_kills"][0]["elapsed"] == 2.5
        assert guard["quarantined"][0]["reason"] == "digest mismatch"
        assert guard["breakers_opened"][0]["key"] == "t2/*/ce/eos"
        assert guard["short_circuits"] == 1

    def test_report_renders_guard_section(self):
        report = render_trace_report(summarize_trace(GUARD_RECORDS))
        assert "Guard (watchdog / integrity / breakers):" in report
        assert "watchdog killed t2/cifar10_like/ce/eos after 2.50s" in report
        assert "quarantined 2 file(s)" in report
        assert "breaker opened for t2/*/ce/eos after 3 failure(s)" in report
        assert "1 cell(s) short-circuited" in report

    def test_guard_section_absent_without_guard_events(self):
        report = render_trace_report(summarize_trace([]))
        assert "Guard (" not in report
