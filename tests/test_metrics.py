"""Tests for the skew-insensitive metrics (BAC, GM, macro-F1)."""

import numpy as np
import pytest

from repro.metrics import (
    accuracy,
    balanced_accuracy,
    classification_report,
    confusion_matrix,
    evaluate_predictions,
    geometric_mean,
    macro_f1,
    per_class_precision,
    per_class_recall,
)


class TestConfusionMatrix:
    def test_perfect(self):
        cm = confusion_matrix([0, 1, 2], [0, 1, 2])
        np.testing.assert_array_equal(cm, np.eye(3, dtype=int))

    def test_counts(self):
        cm = confusion_matrix([0, 0, 1, 1], [0, 1, 1, 1])
        np.testing.assert_array_equal(cm, [[1, 1], [0, 2]])

    def test_explicit_num_classes(self):
        cm = confusion_matrix([0], [0], num_classes=4)
        assert cm.shape == (4, 4)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            confusion_matrix([0, 1], [0])

    def test_negative_true_label_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            confusion_matrix([0, -1], [0, 0])

    def test_negative_pred_label_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            confusion_matrix([0, 1], [0, -2])

    def test_label_beyond_num_classes_rejected(self):
        with pytest.raises(ValueError, match="maximum label"):
            confusion_matrix([0, 3], [0, 1], num_classes=3)

    def test_empty_inputs(self):
        cm = confusion_matrix([], [], num_classes=2)
        np.testing.assert_array_equal(cm, np.zeros((2, 2), dtype=int))


class TestRecallPrecision:
    def test_per_class_recall(self):
        cm = np.array([[8, 2], [5, 5]])
        np.testing.assert_allclose(per_class_recall(cm), [0.8, 0.5])

    def test_per_class_precision(self):
        cm = np.array([[8, 2], [5, 5]])
        np.testing.assert_allclose(
            per_class_precision(cm), [8 / 13, 5 / 7]
        )

    def test_absent_class_zero(self):
        cm = np.array([[3, 0], [0, 0]])
        assert per_class_recall(cm)[1] == 0.0
        assert per_class_precision(cm)[1] == 0.0


class TestBalancedAccuracy:
    def test_is_mean_of_recalls(self):
        y_true = [0] * 90 + [1] * 10
        y_pred = [0] * 90 + [0] * 9 + [1]
        # recall(0)=1.0, recall(1)=0.1
        assert balanced_accuracy(y_true, y_pred) == pytest.approx(0.55)

    def test_insensitive_to_imbalance(self):
        """A majority-only classifier gets BAC 0.5 regardless of skew."""
        for n_major in (60, 600):
            y_true = [0] * n_major + [1] * 10
            y_pred = [0] * (n_major + 10)
            assert balanced_accuracy(y_true, y_pred) == pytest.approx(0.5)

    def test_plain_accuracy_is_skew_sensitive(self):
        y_true = [0] * 90 + [1] * 10
        y_pred = [0] * 100
        assert accuracy(y_true, y_pred) == pytest.approx(0.9)
        assert balanced_accuracy(y_true, y_pred) == pytest.approx(0.5)

    def test_ignores_absent_classes(self):
        assert balanced_accuracy([0, 0], [0, 0], num_classes=5) == 1.0


class TestGeometricMean:
    def test_perfect(self):
        assert geometric_mean([0, 1], [0, 1]) == pytest.approx(1.0)

    def test_zero_recall_floored(self):
        y_true = [0] * 5 + [1] * 5
        y_pred = [0] * 10
        gm = geometric_mean(y_true, y_pred, correction=0.001)
        assert gm == pytest.approx(np.sqrt(1.0 * 0.001))

    def test_is_geometric_not_arithmetic(self):
        y_true = [0] * 10 + [1] * 10
        y_pred = [0] * 10 + [1] * 5 + [0] * 5
        gm = geometric_mean(y_true, y_pred)
        assert gm == pytest.approx(np.sqrt(0.5))
        assert gm < balanced_accuracy(y_true, y_pred)


class TestMacroF1:
    def test_perfect(self):
        assert macro_f1([0, 1, 2], [0, 1, 2]) == pytest.approx(1.0)

    def test_manual_value(self):
        y_true = [0, 0, 1, 1]
        y_pred = [0, 1, 1, 1]
        # class0: p=1, r=.5, f1=2/3 ; class1: p=2/3, r=1, f1=0.8
        assert macro_f1(y_true, y_pred) == pytest.approx((2 / 3 + 0.8) / 2)

    def test_empty_prediction_class(self):
        y_true = [0, 1]
        y_pred = [0, 0]
        assert 0.0 <= macro_f1(y_true, y_pred) < 1.0


class TestEvaluatePredictions:
    def test_returns_paper_triple(self):
        out = evaluate_predictions([0, 1], [0, 1])
        assert set(out) == {"bac", "gm", "fm"}
        assert all(v == pytest.approx(1.0) for v in out.values())

    def test_report_contains_metrics(self):
        text = classification_report([0, 1, 1], [0, 1, 0])
        assert "BAC=" in text and "GM=" in text and "FM=" in text
        assert "class" in text
