"""CI gate: the lint engine must report a clean tree over src/.

This is the tier-1-adjacent enforcement of the repo's static-analysis
conventions — any non-suppressed finding in src/ fails the build, and
every suppression that exists must actually suppress something (the
engine's NOQA001 rule guarantees suppressions cannot go stale).
"""

from pathlib import Path

import repro
from repro.analysis import LintEngine

REPO_ROOT = Path(repro.__file__).resolve().parents[2]
SRC = REPO_ROOT / "src"


def test_src_tree_is_lint_clean():
    report = LintEngine().run([SRC])
    assert report.files_checked > 50, "lint gate found too few files; wrong root?"
    details = "\n" + report.format_text()
    assert not report.findings, details


def test_every_suppression_is_justified():
    """Each # repro: noqa in src/ must carry a justification comment."""
    report = LintEngine().run([SRC])
    for finding in report.suppressed:
        source_line = Path(finding.path).read_text().splitlines()[finding.line - 1]
        marker = source_line.split("noqa", 1)[1]
        # Strip the [RULE] spec; whatever remains is the justification.
        justification = marker.split("]", 1)[-1].strip(" ]:")
        assert justification, (
            "%s:%d suppresses %s without a justification comment"
            % (finding.path, finding.line, finding.rule)
        )


def test_console_script_is_registered():
    import tomllib

    payload = tomllib.loads((REPO_ROOT / "pyproject.toml").read_text())
    scripts = payload["project"]["scripts"]
    assert scripts["repro-lint"] == "repro.analysis.__main__:main"
    assert scripts["repro-trace"] == "repro.telemetry.__main__:main"
