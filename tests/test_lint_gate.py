"""CI gate: the full rule set over src/ AND tests/ must be clean modulo
the committed baseline.

This is the tier-1-adjacent enforcement of the repo's static-analysis
conventions — any finding not frozen in ``.repro-lint-baseline.json``
fails the build, every suppression that exists must actually suppress
something (the engine's NOQA001 rule guarantees suppressions cannot go
stale), and the baseline itself only shrinks: frozen debt is paid down
by fixing it and re-running ``--update-baseline``, never by adding new
entries by hand.
"""

import textwrap
from pathlib import Path

import repro
from repro.analysis import Baseline, LintEngine

REPO_ROOT = Path(repro.__file__).resolve().parents[2]
SRC = REPO_ROOT / "src"
TESTS = REPO_ROOT / "tests"
BASELINE = REPO_ROOT / ".repro-lint-baseline.json"


def gate_report():
    report = LintEngine().run([SRC, TESTS])
    new, baselined = Baseline.load(BASELINE).filter(report.findings)
    report.findings = new
    report.baselined = len(baselined)
    return report


def test_src_tree_is_lint_clean():
    """src/ carries zero debt — it must be clean without any baseline."""
    report = LintEngine().run([SRC])
    assert report.files_checked > 50, "lint gate found too few files; wrong root?"
    details = "\n" + report.format_text()
    assert not report.findings, details


def test_full_tree_is_clean_against_baseline():
    """src/ + tests/ under the full rule set, modulo the frozen baseline."""
    report = gate_report()
    details = "\n" + report.format_text()
    assert not report.findings, details


def test_baseline_has_no_dead_entries():
    """Every baseline entry must still match a real finding — fixed debt
    must be dropped via --update-baseline, not left to rot."""
    report = LintEngine().run([SRC, TESTS])
    baseline = Baseline.load(BASELINE)
    _, baselined = baseline.filter(report.findings)
    assert len(baselined) == sum(baseline.entries.values()), (
        "stale baseline entries: run "
        "`python -m repro.analysis --update-baseline src tests`"
    )


def test_synthetic_new_violation_fails_the_gate(tmp_path):
    """The baseline must not absorb findings it never froze: a brand-new
    violation anywhere in the tree shows up as a failure."""
    offender = tmp_path / "offender.py"
    offender.write_text(
        textwrap.dedent(
            """
            import numpy as np

            rng = np.random.default_rng()
            """
        ),
        encoding="utf-8",
    )
    report = LintEngine().run([SRC, TESTS, offender])
    new, _ = Baseline.load(BASELINE).filter(report.findings)
    assert any(
        f.rule == "RNG002" and f.path == str(offender) for f in new
    ), "synthetic violation was swallowed by the baseline"


def test_every_suppression_is_justified():
    """Each # repro: noqa in src/ or tests/ must carry a justification."""
    report = LintEngine().run([SRC, TESTS])
    for finding in report.suppressed:
        source_line = Path(finding.path).read_text().splitlines()[finding.line - 1]
        marker = source_line.split("noqa", 1)[1]
        # Strip the [RULE] spec; whatever remains is the justification.
        justification = marker.split("]", 1)[-1].strip(" ]:")
        assert justification, (
            "%s:%d suppresses %s without a justification comment"
            % (finding.path, finding.line, finding.rule)
        )


def test_console_script_is_registered():
    import tomllib

    payload = tomllib.loads((REPO_ROOT / "pyproject.toml").read_text())
    scripts = payload["project"]["scripts"]
    assert scripts["repro-lint"] == "repro.analysis.__main__:main"
    assert scripts["repro-trace"] == "repro.telemetry.__main__:main"
    assert scripts["repro-serve"] == "repro.serve.__main__:main"
