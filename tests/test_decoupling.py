"""Tests for the decoupled-classifier baselines (cRT, tau-norm, NCM)."""

import numpy as np
import pytest

from repro.core import NearestClassMean, crt_retrain, tau_normalize
from repro.nn import SmallConvNet


@pytest.fixture
def rng():
    return np.random.default_rng(111)


@pytest.fixture
def embedding_task(rng):
    """Imbalanced, separable 16-dim embeddings for 3 classes."""
    centers = np.zeros((3, 16))
    centers[0, 0] = 2.5
    centers[1, 1] = 2.5
    centers[2, 2] = 2.5
    counts = [120, 24, 6]
    emb, labels = [], []
    for c, n in enumerate(counts):
        emb.append(rng.normal(centers[c], 1.0, size=(n, 16)))
        labels += [c] * n
    return np.concatenate(emb), np.array(labels)


class TestCRT:
    def test_improves_minority_over_imbalanced_head(self, embedding_task, rng):
        from repro.core import finetune_classifier
        from repro.metrics import balanced_accuracy

        emb, labels = embedding_task
        test_emb, test_labels = embedding_task  # same distribution
        model = SmallConvNet(num_classes=3, width=4, rng=rng)

        # Head trained on imbalanced embeddings.
        finetune_classifier(model, emb, labels, epochs=15,
                            reinitialize=True, rng=np.random.default_rng(1))
        from repro.tensor import Tensor

        before = balanced_accuracy(
            test_labels, model.forward_head(Tensor(test_emb)).data.argmax(axis=1)
        )
        crt_retrain(model, emb, labels, epochs=15, rng=np.random.default_rng(2))
        after = balanced_accuracy(
            test_labels, model.forward_head(Tensor(test_emb)).data.argmax(axis=1)
        )
        assert after >= before - 0.02

    def test_returns_history(self, embedding_task, rng):
        emb, labels = embedding_task
        model = SmallConvNet(num_classes=3, width=4, rng=rng)
        history = crt_retrain(model, emb, labels, epochs=3)
        assert len(history) == 3


class TestTauNormalize:
    def test_tau_one_equalizes_norms(self, rng):
        model = SmallConvNet(num_classes=4, width=4, rng=rng)
        model.classifier.weight.data[...] = rng.normal(
            size=model.classifier.weight.shape
        ) * np.array([[4.0], [2.0], [1.0], [0.5]])
        tau_normalize(model.classifier, tau=1.0)
        norms = np.linalg.norm(model.classifier.weight.data, axis=1)
        np.testing.assert_allclose(norms, 1.0, atol=1e-9)

    def test_tau_zero_noop(self, rng):
        model = SmallConvNet(num_classes=3, width=4, rng=rng)
        before = model.classifier.weight.data.copy()
        tau_normalize(model.classifier, tau=0.0)
        np.testing.assert_allclose(model.classifier.weight.data, before)

    def test_returns_prior_norms(self, rng):
        model = SmallConvNet(num_classes=3, width=4, rng=rng)
        expected = np.linalg.norm(model.classifier.weight.data, axis=1)
        returned = tau_normalize(model.classifier, tau=0.5)
        np.testing.assert_allclose(returned, expected)

    def test_bias_scaled_consistently(self, rng):
        model = SmallConvNet(num_classes=3, width=4, rng=rng)
        model.classifier.bias.data[...] = 1.0
        norms = np.linalg.norm(model.classifier.weight.data, axis=1)
        tau_normalize(model.classifier, tau=1.0)
        np.testing.assert_allclose(model.classifier.bias.data, 1.0 / norms)

    def test_invalid_tau(self, rng):
        model = SmallConvNet(num_classes=3, width=4, rng=rng)
        with pytest.raises(ValueError):
            tau_normalize(model.classifier, tau=1.5)

    def test_reduces_majority_bias(self, embedding_task, rng):
        """After training on imbalanced data, tau-norm lifts minority
        predictions."""
        from repro.core import finetune_classifier
        from repro.tensor import Tensor

        emb, labels = embedding_task
        model = SmallConvNet(num_classes=3, width=4, rng=rng)
        finetune_classifier(model, emb, labels, epochs=20,
                            reinitialize=True, rng=np.random.default_rng(3))
        preds_before = model.forward_head(Tensor(emb)).data.argmax(axis=1)
        minority_before = (preds_before == 2).sum()
        tau_normalize(model.classifier, tau=1.0)
        preds_after = model.forward_head(Tensor(emb)).data.argmax(axis=1)
        minority_after = (preds_after == 2).sum()
        assert minority_after >= minority_before


class TestNCM:
    def test_perfect_on_separated_clusters(self, rng):
        emb = np.concatenate(
            [rng.normal([5, 0], 0.2, (30, 2)), rng.normal([0, 5], 0.2, (10, 2))]
        )
        labels = np.array([0] * 30 + [1] * 10)
        ncm = NearestClassMean(normalize=False).fit(emb, labels)
        assert ncm.score(emb, labels) == 1.0

    def test_imbalance_insensitive(self, embedding_task):
        """NCM uses only class means, so skewed counts don't bias it."""
        emb, labels = embedding_task
        ncm = NearestClassMean().fit(emb, labels)
        from repro.metrics import balanced_accuracy

        assert balanced_accuracy(labels, ncm.predict(emb)) > 0.8

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            NearestClassMean().predict(np.zeros((1, 4)))

    def test_normalization_option(self, rng):
        emb = rng.normal(size=(20, 4))
        labels = np.array([0, 1] * 10)
        a = NearestClassMean(normalize=True).fit(emb, labels)
        b = NearestClassMean(normalize=False).fit(emb, labels)
        assert not np.allclose(a.means, b.means)

    def test_classes_preserved(self, rng):
        emb = rng.normal(size=(10, 3))
        labels = np.array([2, 5] * 5)  # non-contiguous labels
        ncm = NearestClassMean().fit(emb, labels)
        preds = ncm.predict(emb)
        assert set(np.unique(preds)) <= {2, 5}
