"""Tier-1 smoke gate for the substrate benchmark.

Re-measures the traced tiny Table-II workload and fails when the
``train.batch`` share of total wall time regresses more than 10%
against the committed ``BENCH_substrate.json`` after-baseline.  The
share (not the absolute seconds) is compared so the gate is robust to
machine speed; a fastpath regression (tape bookkeeping creeping back
into no_grad, scratch pool misses, un-fused kernels) shifts time into
``train.batch`` and moves the share.
"""

import importlib.util
import json
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE_PATH = REPO_ROOT / "BENCH_substrate.json"
BENCH_PATH = REPO_ROOT / "benchmarks" / "bench_substrate.py"


def _load_bench_module():
    spec = importlib.util.spec_from_file_location(
        "bench_substrate", BENCH_PATH
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def baseline():
    with open(BASELINE_PATH) as fh:
        return json.load(fh)


def test_baseline_records_the_claimed_speedup(baseline):
    """The committed snapshot must actually show the >= 1.5x win."""
    assert baseline["before"]["default_dtype"] == "float64"
    assert baseline["after"]["default_dtype"] == "float32"
    before = baseline["before"]["table2_tiny_traced"]["train_batch_seconds"]
    after = baseline["after"]["table2_tiny_traced"]["train_batch_seconds"]
    assert before / after >= 1.5


def test_train_batch_share_has_not_regressed(baseline):
    bench = _load_bench_module()
    measured = bench.traced_table2(seed=0, repeats=2)
    committed = baseline["after"]["table2_tiny_traced"]["train_batch_share"]
    limit = committed * 1.10 + 0.01
    assert measured["train_batch_share"] <= limit, (
        "train.batch share %.4f exceeds committed baseline %.4f by more "
        "than 10%% — the substrate fast path has regressed (measured: %r)"
        % (measured["train_batch_share"], committed, measured)
    )
