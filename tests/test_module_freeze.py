"""Tests for parameter freezing and the pixel-mode Table III runner."""

import numpy as np
import pytest

from repro.nn import SmallConvNet
from repro.tensor import Tensor


class TestRequiresGrad:
    def test_freeze_blocks_gradients(self):
        model = SmallConvNet(num_classes=3, width=4, rng=np.random.default_rng(0))
        model.requires_grad_(False)
        model.classifier.requires_grad_(True)
        out = model(Tensor(np.random.default_rng(1).normal(size=(2, 3, 8, 8))))
        out.sum().backward()
        assert model.conv1.weight.grad is None
        assert model.classifier.weight.grad is not None

    def test_unfreeze_restores(self):
        model = SmallConvNet(num_classes=3, width=4, rng=np.random.default_rng(0))
        model.requires_grad_(False).requires_grad_(True)
        assert all(p.requires_grad for p in model.parameters())

    def test_returns_self_for_chaining(self):
        model = SmallConvNet(num_classes=2, width=4, rng=np.random.default_rng(0))
        assert model.requires_grad_(False) is model


class TestTable3Modes:
    def test_invalid_mode_rejected(self):
        from repro.experiments import run_table3

        with pytest.raises(ValueError):
            run_table3(mode="latent")

    def test_pixel_mode_runs_gan_as_preprocessing(self):
        from repro.experiments import ExtractorCache, bench_config, run_table3

        config = bench_config(phase1_epochs=3)
        out = run_table3(
            config, samplers=("bagan", "eos"), mode="pixel",
            cache=ExtractorCache(),
        )
        assert out["mode"] == "pixel"
        # The GAN pre-processing row includes full retraining, so it must
        # cost much more than the EOS embedding pipeline's resample+tune.
        key_gan = ("cifar10_like", "ce", "bagan")
        key_eos = ("cifar10_like", "ce", "eos")
        assert out["timing"][key_gan] > out["timing"][key_eos]
