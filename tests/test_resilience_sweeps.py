"""End-to-end resilience tests against the real Table-II sweep.

The two acceptance behaviors from the resilience work:

1. a sweep killed mid-run (simulated process death) and then resumed
   from its checkpoint directory reproduces the uninterrupted run's
   metrics *exactly* under a fixed seed;
2. a cell whose training diverges on every retry completes as a
   ``FAILED(reason)`` row — after the configured number of attempts —
   while the rest of the sweep finishes and reports the degradation.
"""

import pytest

from repro.experiments import ExtractorCache, bench_config, run_table2
from repro.resilience import (
    CellFailure,
    DivergenceError,
    FaultPlan,
    RetryPolicy,
    RunRegistry,
    SimulatedKill,
    inject_faults,
)

MICRO = bench_config(phase1_epochs=2, finetune_epochs=2,
                     model_kwargs={"width": 4})
SAMPLERS = ("none", "smote", "eos")
KILL_CELL = "t2/cifar10_like/ce/eos"


def run_sweep(cache, registry=None, retry_policy=None):
    return run_table2(
        MICRO,
        losses=("ce",),
        samplers=SAMPLERS,
        cache=cache,
        registry=registry,
        retry_policy=retry_policy,
    )


@pytest.fixture(scope="module")
def reference():
    """The uninterrupted run every resilience scenario is compared to."""
    return run_sweep(ExtractorCache())


class TestKillAndResume:
    def test_resumed_run_reproduces_reference_exactly(self, tmp_path,
                                                      reference):
        registry = RunRegistry(tmp_path / "run")
        plan = FaultPlan()
        plan.inject("sweep.cell", action="kill", when={"cell": KILL_CELL})
        with inject_faults(plan):
            with pytest.raises(SimulatedKill):
                run_sweep(ExtractorCache(registry=registry),
                          registry=registry)

        # The kill lost only the in-flight cell: everything before it is
        # durable in the manifest, including the phase-1 extractor.
        statuses = registry.cell_statuses()
        assert KILL_CELL not in statuses
        assert len(statuses) == 2
        assert all(status == "done" for status in statuses.values())
        assert len(registry.manifest["phase1"]) == 1

        # Resume in a fresh process-equivalent: new registry handle, new
        # cache, no faults.  Checkpointed cells load from the manifest,
        # the killed cell recomputes on the registry-restored extractor.
        resumed = run_sweep(
            ExtractorCache(registry=RunRegistry(tmp_path / "run")),
            registry=RunRegistry(tmp_path / "run"),
        )
        assert resumed["results"] == reference["results"]

    def test_second_resume_is_pure_replay(self, tmp_path, reference):
        registry = RunRegistry(tmp_path / "run")
        run_sweep(ExtractorCache(registry=registry), registry=registry)
        replay_cache = ExtractorCache(registry=RunRegistry(tmp_path / "run"))
        replayed = run_sweep(replay_cache,
                             registry=RunRegistry(tmp_path / "run"))
        assert replayed["results"] == reference["results"]
        # Every cell came from the manifest; the one cache miss is the
        # per-loss artifact fetch, satisfied from the registry's
        # persisted extractor rather than by retraining.
        assert replay_cache.stats()["misses"] == 1


class TestAtomicWriteCrashWindow:
    def test_kill_between_temp_write_and_replace_keeps_old_manifest(
            self, tmp_path):
        registry = RunRegistry(tmp_path / "run")
        registry.record_cell("c/1", {"v": 1})

        # Kill inside atomic_write's crash window: after the temp file
        # is fsynced, before os.replace swings it over manifest.json.
        plan = FaultPlan()
        plan.inject("artifact.replace", action="kill",
                    when={"name": "manifest.json"})
        with inject_faults(plan):
            with pytest.raises(SimulatedKill):
                registry.record_cell("c/2", {"v": 2})

        # Resume sees the previous intact manifest: c/1 durable, the
        # in-flight c/2 lost, and no *.tmp debris left behind.
        resumed = RunRegistry(tmp_path / "run")
        assert resumed.cell_statuses() == {"c/1": "done"}
        assert resumed.load_cell("c/1") == {"v": 1}
        assert list((tmp_path / "run").glob("*.tmp")) == []

    def test_kill_between_replace_and_dirsync_keeps_new_manifest(
            self, tmp_path):
        registry = RunRegistry(tmp_path / "run")
        registry.record_cell("c/1", {"v": 1})

        # Kill inside the *other* crash window: after os.replace made the
        # rename visible, before the parent-directory fsync pinned it.
        plan = FaultPlan()
        plan.inject("artifact.dirsync", action="kill",
                    when={"name": "manifest.json"})
        with inject_faults(plan):
            with pytest.raises(SimulatedKill):
                registry.record_cell("c/2", {"v": 2})

        # The rename already happened, so the NEW manifest (with both
        # cells) is what resume must see — and no temp debris remains.
        resumed = RunRegistry(tmp_path / "run")
        assert resumed.cell_statuses() == {"c/1": "done", "c/2": "done"}
        assert resumed.load_cell("c/2") == {"v": 2}
        assert list((tmp_path / "run").glob("*.tmp")) == []


class TestDivergenceDegradation:
    def test_diverged_cell_fails_after_retry_budget(self, reference):
        plan = FaultPlan()
        plan.inject(
            "sweep.cell", action="raise",
            exc=DivergenceError("injected divergence", epoch=0, batch=0),
            when={"cell": "t2/cifar10_like/ce/smote"}, times=None,
        )
        with inject_faults(plan):
            out = run_sweep(ExtractorCache(),
                            retry_policy=RetryPolicy(max_retries=1))

        failure = out["results"][("cifar10_like", "ce", "smote")]
        assert isinstance(failure, CellFailure)
        assert failure.error_type == "DivergenceError"
        assert failure.attempts == 2  # initial try + one retry
        assert "FAILED" in out["report"]
        assert "DEGRADED: 1 / 3 cell(s) failed" in out["report"]
        # The surviving cells match the reference run bit for bit.
        for key in (("cifar10_like", "ce", "none"),
                    ("cifar10_like", "ce", "eos")):
            assert out["results"][key] == reference["results"][key]

    def test_transient_divergence_recovers_via_retry(self, reference):
        plan = FaultPlan()
        plan.inject(
            "sweep.cell", action="raise",
            exc=DivergenceError("transient divergence"),
            when={"cell": "t2/cifar10_like/ce/none"}, times=1,
        )
        with inject_faults(plan):
            out = run_sweep(ExtractorCache(),
                            retry_policy=RetryPolicy(max_retries=2))

        assert "FAILED" not in out["report"]
        assert "DEGRADED" not in out["report"]
        assert [(point, ctx["attempt"]) for point, ctx, _ in plan.log] == [
            ("sweep.cell", 0)
        ]
        # The retried cell ran on attempt index 1 (seed bump + LR
        # backoff), so its metrics may legitimately differ from the
        # reference; the untouched cells must not.
        assert (out["results"][("cifar10_like", "ce", "eos")]
                == reference["results"][("cifar10_like", "ce", "eos")])
