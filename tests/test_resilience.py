"""Unit tests for the fault-tolerance stack: atomic writes, structured
divergence/timeout errors, retry schedules, fault injection, the run
registry, and the bounded extractor cache."""

import json
import os

import numpy as np
import pytest

from repro.core import Trainer, finetune_classifier
from repro.data import ArrayDataset
from repro.experiments import bench_config
from repro.experiments.pipeline import ExtractorCache
from repro.losses import CrossEntropyLoss
from repro.nn import SmallConvNet
from repro.optim import SGD
from repro.resilience import (
    Attempt,
    CellFailure,
    CheckpointMismatchError,
    DivergenceError,
    FaultInjected,
    FaultPlan,
    RetryBudgetExhausted,
    RetryPolicy,
    RunRegistry,
    SimulatedKill,
    TrialTimeoutError,
    active_plan,
    failure_from_payload,
    fingerprint_of,
    inject_faults,
    run_cell,
)
from repro.utils import atomic_write, atomic_write_json, load_arrays, save_arrays


@pytest.fixture
def rng():
    return np.random.default_rng(7)


# ----------------------------------------------------------------------
# Atomic writes
# ----------------------------------------------------------------------
class TestAtomicWrite:
    def test_writes_bytes(self, tmp_path):
        path = tmp_path / "out.bin"
        atomic_write(path, lambda handle: handle.write(b"payload"))
        assert path.read_bytes() == b"payload"

    def test_failure_leaves_previous_file(self, tmp_path):
        path = tmp_path / "out.bin"
        path.write_bytes(b"old")

        def explode(handle):
            handle.write(b"partial")
            raise RuntimeError("disk on fire")

        with pytest.raises(RuntimeError):
            atomic_write(path, explode)
        assert path.read_bytes() == b"old"

    def test_failure_leaves_no_temp_droppings(self, tmp_path):
        path = tmp_path / "out.bin"
        with pytest.raises(RuntimeError):
            atomic_write(path, lambda handle: (_ for _ in ()).throw(
                RuntimeError("boom")))
        assert os.listdir(tmp_path) == []

    def test_json_roundtrip_sorted(self, tmp_path):
        path = tmp_path / "m.json"
        atomic_write_json(path, {"b": 2, "a": [1.5, None]})
        assert json.loads(path.read_text()) == {"b": 2, "a": [1.5, None]}

    def test_save_load_arrays(self, tmp_path, rng):
        arrays = {"x": rng.normal(size=(4, 3)), "y": np.arange(4)}
        out = save_arrays(tmp_path / "a", arrays)
        assert out.endswith(".npz")
        loaded = load_arrays(out)
        np.testing.assert_array_equal(loaded["x"], arrays["x"])
        np.testing.assert_array_equal(loaded["y"], arrays["y"])


class TestLoadModelDiagnostics:
    def test_error_names_mismatched_parameters(self, tmp_path, rng):
        from repro.utils import load_model, save_model

        model = SmallConvNet(num_classes=4, width=4, rng=rng)
        path = tmp_path / "model.npz"
        save_model(model, path)
        other = SmallConvNet(num_classes=4, width=8, rng=rng)
        with pytest.raises(ValueError) as err:
            load_model(other, path)
        assert "shape mismatch" in str(err.value)
        assert "conv1.weight" in str(err.value)


# ----------------------------------------------------------------------
# Retry policy
# ----------------------------------------------------------------------
class TestRetryPolicy:
    def test_schedule_is_deterministic(self):
        policy = RetryPolicy(max_retries=2, seed_bump=1000, lr_backoff=0.5,
                             trial_timeout=30.0)
        first = list(policy.attempts())
        second = list(policy.attempts())
        assert [a.index for a in first] == [0, 1, 2]
        assert [a.seed_offset for a in first] == [0, 1000, 2000]
        assert [a.lr_scale for a in first] == [1.0, 0.5, 0.25]
        assert all(a.max_seconds == 30.0 for a in first)
        assert [(a.index, a.seed_offset, a.lr_scale) for a in first] == [
            (a.index, a.seed_offset, a.lr_scale) for a in second
        ]

    def test_success_after_failures(self):
        policy = RetryPolicy(max_retries=2)
        calls = []

        def trial(attempt):
            calls.append(attempt.index)
            if attempt.index < 2:
                raise DivergenceError("nan", epoch=0, batch=1)
            return "ok"

        assert policy.run(trial) == "ok"
        assert calls == [0, 1, 2]

    def test_budget_exhaustion_chains_last_error(self):
        policy = RetryPolicy(max_retries=1)

        def trial(attempt):
            raise TrialTimeoutError("too slow", seconds=9.0, budget=1.0)

        with pytest.raises(RetryBudgetExhausted) as err:
            policy.run(trial)
        assert err.value.attempts == 2
        assert isinstance(err.value.last_error, TrialTimeoutError)
        assert isinstance(err.value.__cause__, TrialTimeoutError)

    def test_non_retryable_error_propagates_immediately(self):
        policy = RetryPolicy(max_retries=3)
        calls = []

        def trial(attempt):
            calls.append(attempt.index)
            raise KeyError("not a training failure")

        with pytest.raises(KeyError):
            policy.run(trial)
        assert calls == [0]

    def test_on_retry_callback_sees_each_failure(self):
        policy = RetryPolicy(max_retries=2)
        seen = []

        def trial(attempt):
            if attempt.index == 0:
                raise DivergenceError("nan")
            return attempt.index

        assert policy.run(trial, on_retry=lambda a, e: seen.append(
            (a.index, type(e).__name__))) == 1
        assert seen == [(0, "DivergenceError")]

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(lr_backoff=0.0)


# ----------------------------------------------------------------------
# Fault injection
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_when_filter_matches_exact_context(self):
        plan = FaultPlan()
        plan.inject("p", action="nan", when={"epoch": 1})
        assert plan.fire("p", {"epoch": 0}) is None
        assert plan.fire("p", {"epoch": 1}) == "nan"
        assert plan.fire("q", {"epoch": 1}) is None

    def test_after_and_times_schedule(self):
        plan = FaultPlan()
        plan.inject("p", action="nan", after=2, times=2)
        results = [plan.fire("p", {}) for _ in range(5)]
        assert results == [None, "nan", "nan", None, None]

    def test_times_none_fires_forever(self):
        plan = FaultPlan()
        plan.inject("p", action="nan", times=None)
        assert all(plan.fire("p", {}) == "nan" for _ in range(4))

    def test_raise_action_uses_custom_exception(self):
        plan = FaultPlan()
        plan.inject("p", action="raise", exc=OSError("no space"))
        with pytest.raises(OSError):
            plan.fire("p", {})
        plan2 = FaultPlan()
        plan2.inject("p", action="raise")
        with pytest.raises(FaultInjected):
            plan2.fire("p", {})

    def test_kill_action_is_base_exception(self):
        plan = FaultPlan()
        plan.inject("p", action="kill")
        with pytest.raises(SimulatedKill):
            try:
                plan.fire("p", {"cell": "x"})
            except Exception:  # pragma: no cover - must NOT catch the kill
                pytest.fail("SimulatedKill was swallowed by except Exception")

    def test_inject_faults_restores_previous_plan(self):
        outer = FaultPlan()
        with inject_faults(outer):
            inner = FaultPlan()
            with inject_faults(inner):
                assert active_plan() is inner
            assert active_plan() is outer
        assert active_plan() is None

    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan().inject("p", action="explode")


# ----------------------------------------------------------------------
# Divergence / timeout guards in the real training loops
# ----------------------------------------------------------------------
def _tiny_setup(rng, n=24):
    images = rng.normal(size=(n, 3, 8, 8))
    labels = rng.integers(0, 3, n)
    dataset = ArrayDataset(images, labels)
    model = SmallConvNet(num_classes=3, width=4, rng=rng)
    trainer = Trainer(model, CrossEntropyLoss(), SGD(model.parameters(), lr=0.05))
    return dataset, model, trainer


class TestTrainingGuards:
    def test_injected_nan_raises_divergence_with_provenance(self, rng):
        dataset, _, trainer = _tiny_setup(rng)
        plan = FaultPlan()
        plan.inject("trainer.batch", action="nan",
                    when={"epoch": 1, "batch": 0})
        with inject_faults(plan):
            with pytest.raises(DivergenceError) as err:
                trainer.fit(dataset, epochs=3, batch_size=8,
                            rng=np.random.default_rng(0))
        assert err.value.epoch == 1
        assert err.value.batch == 0
        assert err.value.phase == "phase1"
        assert "epoch=1" in str(err.value)

    def test_zero_budget_times_out(self, rng):
        dataset, _, trainer = _tiny_setup(rng)
        with pytest.raises(TrialTimeoutError) as err:
            trainer.fit(dataset, epochs=1, batch_size=8,
                        rng=np.random.default_rng(0), max_seconds=0.0)
        assert err.value.budget == 0.0

    def test_clean_run_unaffected_without_plan(self, rng):
        dataset, _, trainer = _tiny_setup(rng)
        history = trainer.fit(dataset, epochs=1, batch_size=8,
                              rng=np.random.default_rng(0))
        assert len(history) == 1 and np.isfinite(history[0]["loss"])

    def test_finetune_guard_raises_with_finetune_phase(self, rng):
        _, model, _ = _tiny_setup(rng)
        embeddings = rng.normal(size=(16, model.classifier.weight.shape[1]))
        labels = rng.integers(0, 3, 16)
        plan = FaultPlan()
        plan.inject("finetune.batch", action="nan",
                    when={"epoch": 0, "batch": 0})
        with inject_faults(plan):
            with pytest.raises(DivergenceError) as err:
                finetune_classifier(model, embeddings, labels, epochs=1,
                                    batch_size=8, rng=np.random.default_rng(0))
        assert err.value.phase == "finetune"


# ----------------------------------------------------------------------
# Run registry
# ----------------------------------------------------------------------
class TestRunRegistry:
    def test_cell_roundtrip_across_reload(self, tmp_path):
        registry = RunRegistry(tmp_path / "run")
        registry.record_cell("t2/a/ce/eos", {"bac": 0.75})
        reloaded = RunRegistry(tmp_path / "run")
        assert reloaded.has_cell("t2/a/ce/eos")
        assert reloaded.load_cell("t2/a/ce/eos") == {"bac": 0.75}

    def test_failed_cells_are_reattempted(self, tmp_path):
        registry = RunRegistry(tmp_path / "run")
        registry.record_cell("c", {"reason": "nan"}, status="failed")
        assert not registry.has_cell("c")
        with pytest.raises(KeyError):
            registry.load_cell("c")
        assert registry.cell_statuses() == {"c": "failed"}

    def test_fingerprint_mismatch_refused(self, tmp_path):
        registry = RunRegistry(tmp_path / "run")
        registry.ensure_fingerprint(fingerprint_of("small", ("a",), 0))
        reloaded = RunRegistry(tmp_path / "run")
        reloaded.ensure_fingerprint(fingerprint_of("small", ("a",), 0))
        with pytest.raises(CheckpointMismatchError):
            reloaded.ensure_fingerprint(fingerprint_of("small", ("a",), 1))

    def test_phase1_roundtrip(self, tmp_path, rng):
        registry = RunRegistry(tmp_path / "run")
        fp = fingerprint_of("phase1", "demo")
        model_state = {"param:w": rng.normal(size=(3, 2))}
        head_state = {"param:h": rng.normal(size=(2,))}
        registry.save_phase1(
            fp, model_state, head_state,
            rng.normal(size=(6, 2)), np.arange(6),
            rng.normal(size=(4, 2)), np.arange(4),
            {"loss": "ce", "train_seconds": 1.5},
        )
        assert registry.has_phase1(fp)
        loaded_model, loaded_head, train, test, meta = RunRegistry(
            tmp_path / "run"
        ).load_phase1(fp)
        np.testing.assert_array_equal(loaded_model["param:w"],
                                      model_state["param:w"])
        np.testing.assert_array_equal(loaded_head["param:h"],
                                      head_state["param:h"])
        assert train[0].shape == (6, 2) and test[0].shape == (4, 2)
        assert meta["loss"] == "ce"

    def test_missing_artifact_file_means_not_checkpointed(self, tmp_path, rng):
        registry = RunRegistry(tmp_path / "run")
        fp = fingerprint_of("phase1", "demo")
        registry.save_phase1(
            fp, {"param:w": rng.normal(size=(2,))}, {"param:h": np.zeros(1)},
            rng.normal(size=(2, 1)), np.arange(2),
            rng.normal(size=(2, 1)), np.arange(2), {},
        )
        os.unlink(tmp_path / "run" / "phase1" / fp / "model.npz")
        assert not registry.has_phase1(fp)

    def test_summary_counts(self, tmp_path):
        registry = RunRegistry(tmp_path / "run")
        registry.record_cell("a", {}, status="done")
        registry.record_cell("b", {}, status="failed")
        assert "2 cell(s) checkpointed (1 done, 1 failed)" in registry.summary()


# ----------------------------------------------------------------------
# Graceful degradation
# ----------------------------------------------------------------------
class TestRunCell:
    def test_success_records_done(self, tmp_path):
        registry = RunRegistry(tmp_path / "run")
        result = run_cell(lambda attempt: {"bac": 0.5}, "c", registry=registry)
        assert result == {"bac": 0.5}
        assert registry.has_cell("c")

    def test_resume_skips_thunk(self, tmp_path):
        registry = RunRegistry(tmp_path / "run")
        registry.record_cell("c", {"bac": 0.9})
        result = run_cell(
            lambda attempt: pytest.fail("must not recompute"), "c",
            registry=registry,
        )
        assert result == {"bac": 0.9}

    def test_failure_degrades_and_is_recorded(self, tmp_path):
        registry = RunRegistry(tmp_path / "run")
        policy = RetryPolicy(max_retries=1)

        def thunk(attempt):
            raise DivergenceError("nan loss", epoch=0, batch=3)

        failure = run_cell(thunk, "c", registry=registry, retry_policy=policy)
        assert isinstance(failure, CellFailure)
        assert failure.error_type == "DivergenceError"
        assert failure.attempts == 2
        assert failure.label().startswith("FAILED(DivergenceError")
        assert registry.cell_statuses() == {"c": "failed"}
        rebuilt = failure_from_payload(
            registry.manifest["cells"]["c"]["payload"]
        )
        assert rebuilt.error_type == "DivergenceError"

    def test_fail_fast_propagates(self):
        def thunk(attempt):
            raise DivergenceError("nan loss")

        with pytest.raises(DivergenceError):
            run_cell(thunk, "c", fail_soft=False)

    def test_simulated_kill_is_never_absorbed(self):
        plan = FaultPlan()
        plan.inject("sweep.cell", action="kill", when={"cell": "c"})
        with inject_faults(plan):
            with pytest.raises(SimulatedKill):
                run_cell(lambda attempt: {"bac": 1.0}, "c")

    def test_retry_recovers_after_injected_divergence(self):
        plan = FaultPlan()
        plan.inject("sweep.cell", action="raise",
                    exc=DivergenceError("injected"), when={"cell": "c"},
                    times=1)
        with inject_faults(plan):
            result = run_cell(lambda attempt: attempt.index, "c",
                              retry_policy=RetryPolicy(max_retries=1))
        assert result == 1


# ----------------------------------------------------------------------
# Extractor cache bound + stats
# ----------------------------------------------------------------------
class TestExtractorCacheLRU:
    def test_lru_eviction_and_stats(self, monkeypatch):
        import repro.experiments.pipeline as pipeline

        trained = []

        def fake_train(config, loss_name, registry=None, retry_policy=None):
            trained.append(loss_name)
            return "artifacts-%s" % loss_name

        monkeypatch.setattr(pipeline, "train_phase1", fake_train)
        config = bench_config()
        cache = ExtractorCache(max_entries=2)

        assert cache.get(config, "ce") == "artifacts-ce"
        assert cache.get(config, "asl") == "artifacts-asl"
        assert cache.get(config, "ce") == "artifacts-ce"  # hit, refreshes ce
        cache.get(config, "focal")  # evicts asl (least recently used)
        assert cache.stats() == {
            "hits": 1, "misses": 3, "evictions": 1, "size": 2,
            "max_entries": 2,
        }
        cache.get(config, "asl")  # miss again: was evicted
        assert trained == ["ce", "asl", "focal", "asl"]

    def test_clear_keeps_counters(self, monkeypatch):
        import repro.experiments.pipeline as pipeline

        monkeypatch.setattr(pipeline, "train_phase1",
                            lambda config, loss_name, **kw: loss_name)
        cache = ExtractorCache(max_entries=4)
        cache.get(bench_config(), "ce")
        cache.clear()
        stats = cache.stats()
        assert stats["size"] == 0 and stats["misses"] == 1

    def test_invalid_bound_rejected(self):
        with pytest.raises(ValueError):
            ExtractorCache(max_entries=0)


class TestAttemptRepr:
    def test_repr_mentions_schedule(self):
        text = repr(Attempt(1, 1000, 0.5, None))
        assert "index=1" in text and "seed_offset=1000" in text
