"""End-to-end integration tests across modules.

These exercise realistic full flows: ResNet training on synthetic
imbalanced data, checkpoint/resume in the middle of the three-phase
pipeline, every loss driving the same framework, and the CLI entry
point.
"""

import numpy as np
import pytest

from repro.core import EOS, ThreePhaseTrainer, extract_features
from repro.data import make_dataset
from repro.losses import build_loss
from repro.nn import build_model
from repro.optim import SGD, MultiStepLR


@pytest.fixture(scope="module")
def tiny():
    return make_dataset("cifar10_like", scale="tiny", seed=3)


class TestResNetEndToEnd:
    def test_resnet_three_phase_improves_gm(self, tiny):
        """A real (reduced) ResNet through all three phases."""
        train, test, info = tiny
        model = build_model(
            "resnet8",
            num_classes=info["num_classes"],
            width_multiplier=0.25,
            rng=np.random.default_rng(0),
        )
        opt = SGD(model.parameters(), lr=0.05, momentum=0.9, weight_decay=5e-4)
        scheduler = MultiStepLR(opt, milestones=[8], gamma=0.1)
        trainer = ThreePhaseTrainer(
            model,
            build_loss("ce"),
            opt,
            sampler=EOS(k_neighbors=10, random_state=0),
            scheduler=scheduler,
        )
        trainer.train_phase1(train, epochs=10, rng=np.random.default_rng(1))
        before = trainer.phase1.evaluate(test)
        trainer.extract_embeddings(train)
        trainer.resample_embeddings()
        trainer.finetune(epochs=10, rng=np.random.default_rng(2))
        after = trainer.evaluate(test)
        # The GM improvement is the framework's most robust effect: the
        # imbalanced baseline scores near zero on the extreme minority.
        assert after["gm"] > before["gm"]
        assert after["bac"] > before["bac"]

    @pytest.mark.parametrize("loss_name", ["ce", "asl", "focal", "ldam"])
    def test_every_loss_drives_the_framework(self, tiny, loss_name):
        train, test, info = tiny
        model = build_model(
            "smallconvnet",
            num_classes=info["num_classes"],
            width=4,
            rng=np.random.default_rng(4),
        )
        loss = build_loss(loss_name, class_counts=info["train_counts"])
        trainer = ThreePhaseTrainer(
            model,
            loss,
            SGD(model.parameters(), lr=0.05, momentum=0.9),
            sampler=EOS(k_neighbors=5, random_state=0),
        )
        trainer.run(train, phase1_epochs=5, rng=np.random.default_rng(5))
        metrics = trainer.evaluate(test)
        assert 0.0 <= metrics["bac"] <= 1.0
        assert metrics["bac"] > 1.0 / info["num_classes"]  # beats chance


class TestCheckpointResume:
    def test_resume_phase3_from_saved_artifacts(self, tiny, tmp_path):
        """Phase-1 weights + embeddings saved to disk, then a *fresh*
        process-equivalent (new model object) resumes phase 3 and gets
        identical predictions."""
        from repro.core import finetune_classifier
        from repro.utils import (
            load_embeddings,
            load_model,
            save_embeddings,
            save_model,
        )

        train, test, info = tiny
        model = build_model(
            "smallconvnet", num_classes=10, width=4, rng=np.random.default_rng(6)
        )
        trainer = ThreePhaseTrainer(
            model, build_loss("ce"), SGD(model.parameters(), lr=0.05, momentum=0.9)
        )
        trainer.train_phase1(train, epochs=4, rng=np.random.default_rng(7))
        emb = trainer.extract_embeddings(train)
        save_model(model, tmp_path / "phase1.npz")
        save_embeddings(tmp_path / "emb.npz", emb, train.labels)

        # Resume in a fresh model.
        fresh = build_model(
            "smallconvnet", num_classes=10, width=4, rng=np.random.default_rng(99)
        )
        load_model(fresh, tmp_path / "phase1.npz")
        emb2, labels2 = load_embeddings(tmp_path / "emb.npz")
        sampler = EOS(k_neighbors=5, random_state=0)
        balanced, balanced_labels = sampler.fit_resample(emb2, labels2)

        finetune_classifier(
            fresh, balanced, balanced_labels, epochs=5,
            rng=np.random.default_rng(8),
        )
        # Continue the original in-memory pipeline identically.
        balanced_b, labels_b = EOS(k_neighbors=5, random_state=0).fit_resample(
            emb, train.labels
        )
        finetune_classifier(
            model, balanced_b, labels_b, epochs=5, rng=np.random.default_rng(8)
        )
        from repro.core.training import predict_logits

        np.testing.assert_allclose(
            predict_logits(fresh, test.images),
            predict_logits(model, test.images),
            atol=1e-10,
        )


class TestTrainingHelpers:
    def test_predict_logits_batch_invariant(self, tiny):
        train, test, info = tiny
        from repro.core.training import predict_logits

        model = build_model(
            "smallconvnet", num_classes=10, width=4, rng=np.random.default_rng(9)
        )
        a = predict_logits(model, test.images[:40], batch_size=7)
        b = predict_logits(model, test.images[:40], batch_size=40)
        np.testing.assert_allclose(a, b, rtol=1e-5, atol=1e-6)

    def test_extract_features_empty_input(self):
        model = build_model(
            "smallconvnet", num_classes=3, width=4, rng=np.random.default_rng(10)
        )
        out = extract_features(model, np.empty((0, 3, 8, 8)))
        assert out.shape[0] == 0


class TestPreprocessedPipeline:
    def test_train_preprocessed_balances_then_trains(self):
        from repro.experiments import bench_config
        from repro.experiments.pipeline import train_preprocessed

        config = bench_config(phase1_epochs=3)
        metrics, seconds = train_preprocessed(config, "ce", "smote")
        assert 0.0 <= metrics["bac"] <= 1.0
        assert seconds > 0

    def test_train_preprocessed_none_baseline(self):
        from repro.experiments import bench_config
        from repro.experiments.pipeline import train_preprocessed

        config = bench_config(phase1_epochs=2)
        metrics, _ = train_preprocessed(config, "ce", "none")
        assert 0.0 <= metrics["bac"] <= 1.0


class TestCLI:
    def test_main_runs_selected_experiment(self, capsys):
        from repro.experiments.__main__ import main

        code = main(["t4", "--scale", "tiny"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Table IV" in out

    def test_main_rejects_unknown_key(self):
        from repro.experiments.__main__ import main

        with pytest.raises(SystemExit):
            main(["t99"])
