"""Tests for the exact t-SNE implementation."""

import numpy as np
import pytest

from repro.manifold import TSNE, perplexity_calibration
from repro.neighbors import pairwise_distances


@pytest.fixture
def rng():
    return np.random.default_rng(101)


@pytest.fixture
def two_blobs(rng):
    a = rng.normal(0.0, 0.3, size=(25, 10))
    b = rng.normal(3.0, 0.3, size=(25, 10))
    return np.concatenate([a, b]), np.array([0] * 25 + [1] * 25)


class TestPerplexityCalibration:
    def test_rows_sum_to_one(self, rng):
        x = rng.normal(size=(20, 5))
        P = perplexity_calibration(pairwise_distances(x, x) ** 2, 5.0)
        np.testing.assert_allclose(P.sum(axis=1), 1.0, atol=1e-6)

    def test_diagonal_zero(self, rng):
        x = rng.normal(size=(15, 3))
        P = perplexity_calibration(pairwise_distances(x, x) ** 2, 5.0)
        np.testing.assert_allclose(np.diag(P), 0.0)

    def test_entropy_matches_target(self, rng):
        x = rng.normal(size=(30, 4))
        target = 8.0
        P = perplexity_calibration(pairwise_distances(x, x) ** 2, target)
        for i in range(30):
            row = P[i][P[i] > 1e-12]
            perp = np.exp(-(row * np.log(row)).sum())
            assert perp == pytest.approx(target, rel=0.05)

    def test_invalid_perplexity(self, rng):
        d = pairwise_distances(rng.normal(size=(5, 2)), rng.normal(size=(5, 2)))
        with pytest.raises(ValueError):
            perplexity_calibration(d ** 2, 10.0)


class TestTSNE:
    def test_output_shape(self, two_blobs):
        x, _ = two_blobs
        out = TSNE(n_iter=100, seed=0).fit_transform(x)
        assert out.shape == (50, 2)

    def test_separates_blobs(self, two_blobs):
        """Well-separated clusters must remain separated in the plane."""
        x, labels = two_blobs
        out = TSNE(perplexity=10, n_iter=250, seed=0).fit_transform(x)
        c0 = out[labels == 0].mean(axis=0)
        c1 = out[labels == 1].mean(axis=0)
        between = np.linalg.norm(c0 - c1)
        within = max(
            np.linalg.norm(out[labels == 0] - c0, axis=1).mean(),
            np.linalg.norm(out[labels == 1] - c1, axis=1).mean(),
        )
        assert between > 2 * within

    def test_kl_decreases(self, two_blobs):
        x, _ = two_blobs
        tsne = TSNE(perplexity=10, n_iter=200, seed=0)
        tsne.fit_transform(x)
        # Compare post-exaggeration KL values (same objective scale).
        post = tsne.kl_history[3:]
        assert post[-1] <= post[0]

    def test_deterministic_given_seed(self, two_blobs):
        x, _ = two_blobs
        a = TSNE(n_iter=60, seed=3).fit_transform(x)
        b = TSNE(n_iter=60, seed=3).fit_transform(x)
        np.testing.assert_allclose(a, b)

    def test_centered_output(self, two_blobs):
        x, _ = two_blobs
        out = TSNE(n_iter=80, seed=0).fit_transform(x)
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-8)

    def test_too_few_points(self):
        with pytest.raises(ValueError):
            TSNE().fit_transform(np.zeros((3, 4)))

    def test_perplexity_autocapped(self, rng):
        # 10 points with default perplexity 15: must not crash.
        out = TSNE(n_iter=50, seed=0).fit_transform(rng.normal(size=(10, 4)))
        assert out.shape == (10, 2)

    def test_invalid_components(self):
        with pytest.raises(ValueError):
            TSNE(n_components=0)

    def test_pca_init_separates_blobs(self, two_blobs):
        x, labels = two_blobs
        out = TSNE(perplexity=10, n_iter=200, init="pca", seed=0).fit_transform(x)
        c0 = out[labels == 0].mean(axis=0)
        c1 = out[labels == 1].mean(axis=0)
        assert np.linalg.norm(c0 - c1) > 1.0

    def test_pca_init_deterministic_regardless_of_seed(self, two_blobs):
        """PCA init does not consume the rng for the layout, so two seeds
        give the same starting configuration (descent is deterministic)."""
        x, _ = two_blobs
        a = TSNE(n_iter=40, init="pca", seed=0).fit_transform(x)
        b = TSNE(n_iter=40, init="pca", seed=99).fit_transform(x)
        np.testing.assert_allclose(a, b)

    def test_invalid_init(self):
        with pytest.raises(ValueError):
            TSNE(init="spectral")

    def test_preserves_local_structure(self, rng):
        """Nearest neighbor in input space should stay among the nearest
        few in the embedding for most points."""
        x = rng.normal(size=(40, 6))
        out = TSNE(perplexity=10, n_iter=300, seed=1).fit_transform(x)
        d_in = pairwise_distances(x, x)
        d_out = pairwise_distances(out, out)
        np.fill_diagonal(d_in, np.inf)
        np.fill_diagonal(d_out, np.inf)
        nn_in = d_in.argmin(axis=1)
        rank_hits = 0
        for i in range(40):
            order = np.argsort(d_out[i])
            if nn_in[i] in order[:8]:
                rank_hits += 1
        assert rank_hits / 40 > 0.5
