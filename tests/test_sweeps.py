"""Tests for the grid-sweep utilities."""

import pytest

from repro.experiments import bench_config, grid_sweep, sweep_report


class TestGridSweep:
    def test_crosses_all_combinations(self):
        config = bench_config()
        seen = []

        def evaluate(variant):
            seen.append((variant.k_neighbors, variant.finetune_epochs))
            return {"bac": variant.k_neighbors / 100.0}

        results = grid_sweep(
            config,
            {"k_neighbors": [5, 10], "finetune_epochs": [3, 6, 9]},
            evaluate,
        )
        assert len(results) == 6
        assert len(set(seen)) == 6

    def test_records_params_and_metrics(self):
        config = bench_config()
        results = grid_sweep(
            config, {"k_neighbors": [7]}, lambda v: {"bac": 0.5, "gm": 0.4}
        )
        assert results[0]["params"] == {"k_neighbors": 7}
        assert results[0]["metrics"]["gm"] == 0.4

    def test_unknown_field_raises(self):
        with pytest.raises(KeyError):
            grid_sweep(bench_config(), {"learning_rate": [0.1]}, lambda v: {})

    def test_empty_grid_raises(self):
        with pytest.raises(ValueError):
            grid_sweep(bench_config(), {}, lambda v: {})

    def test_base_config_not_mutated(self):
        config = bench_config()
        grid_sweep(config, {"k_neighbors": [99]}, lambda v: {"bac": 0.0})
        assert config.k_neighbors == 10

    def test_parallel_matches_serial(self):
        config = bench_config()
        grid = {"k_neighbors": [3, 5, 7, 9]}
        evaluate = lambda v: {"bac": v.k_neighbors / 10.0}
        serial = grid_sweep(config, grid, evaluate, max_workers=1)
        parallel = grid_sweep(config, grid, evaluate, max_workers=3)
        assert serial == parallel


class TestSweepReport:
    def test_ranked_descending(self):
        results = [
            {"params": {"k": 1}, "metrics": {"bac": 0.2}},
            {"params": {"k": 2}, "metrics": {"bac": 0.9}},
        ]
        report = sweep_report(results, sort_by="bac")
        lines = report.splitlines()
        k2_line = next(i for i, l in enumerate(lines) if l.startswith("2"))
        k1_line = next(i for i, l in enumerate(lines) if l.startswith("1"))
        assert k2_line < k1_line

    def test_nan_ranked_last_descending(self):
        results = [
            {"params": {"k": 1}, "metrics": {"bac": float("nan")}},
            {"params": {"k": 2}, "metrics": {"bac": 0.1}},
            {"params": {"k": 3}, "metrics": {"bac": 0.9}},
        ]
        report = sweep_report(results, sort_by="bac")
        lines = report.splitlines()
        order = [
            next(i for i, l in enumerate(lines) if l.startswith(str(k)))
            for k in (3, 2, 1)
        ]
        assert order == sorted(order)  # 0.9, 0.1, nan
        assert "*" in lines[order[-1]]
        assert "ranked last" in report

    def test_nan_ranked_last_ascending(self):
        results = [
            {"params": {"k": 1}, "metrics": {"bac": float("nan")}},
            {"params": {"k": 2}, "metrics": {"bac": 0.5}},
        ]
        report = sweep_report(results, sort_by="bac", descending=False)
        lines = report.splitlines()
        k2_line = next(i for i, l in enumerate(lines) if l.startswith("2"))
        k1_line = next(i for i, l in enumerate(lines) if l.startswith("1"))
        assert k2_line < k1_line

    def test_no_nan_no_trailer(self):
        results = [{"params": {"k": 1}, "metrics": {"bac": 0.5}}]
        report = sweep_report(results, sort_by="bac")
        assert "ranked last" not in report

    def test_unknown_metric_raises(self):
        with pytest.raises(KeyError):
            sweep_report(
                [{"params": {"k": 1}, "metrics": {"bac": 0.5}}], sort_by="f1"
            )

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            sweep_report([])

    def test_integration_with_real_evaluation(self):
        """A real micro-sweep: fine-tune length over a cached extractor."""
        from repro.experiments import ExtractorCache, evaluate_sampler

        cache = ExtractorCache()
        config = bench_config(phase1_epochs=3)

        def evaluate(variant):
            artifacts = cache.get(variant, "ce")
            return evaluate_sampler(
                artifacts, "eos", finetune_epochs=variant.finetune_epochs
            )

        results = grid_sweep(config, {"finetune_epochs": [1, 5]}, evaluate)
        report = sweep_report(results)
        assert "finetune_epochs" in report
        assert len(results) == 2
