"""Tier-1 gate for the serve dispatch benchmark.

Two checks, mirroring ``tests/test_substrate_bench.py``:

* the committed ``BENCH_serve.json`` must actually record the >= 2x
  dispatch-latency improvement the persistent pool was built for (and
  byte-identical settlements across modes — a speedup that broke
  determinism would be worthless);
* a small re-measurement must not regress more than 10% below that
  2x contract.  The *contract* is the comparison point, not the
  committed absolute figure: the recorded speedup (~24x on the
  recording container) swings with machine load and core count, while
  "persistent dispatch beats fork-per-job by at least 2x" is the
  invariant a regression (e.g. an accidental re-fork per job, a
  pickle round-trip creeping into the hot path) would break.
"""

import importlib.util
import json
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE_PATH = REPO_ROOT / "BENCH_serve.json"
BENCH_PATH = REPO_ROOT / "benchmarks" / "bench_serve.py"

#: The acceptance contract: persistent dispatch at least this much
#: faster per job than fork-per-job.
REQUIRED_SPEEDUP = 2.0

#: The gate's tolerance: fail on >10% regression below the contract.
REGRESSION_LIMIT = REQUIRED_SPEEDUP * 0.90


def _load_bench_module():
    spec = importlib.util.spec_from_file_location("bench_serve", BENCH_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def baseline():
    with open(BASELINE_PATH) as fh:
        return json.load(fh)


def test_baseline_records_the_claimed_speedup(baseline):
    """The committed snapshot must show the >= 2x dispatch win."""
    assert baseline["benchmark"] == "serve_dispatch_latency"
    assert baseline["identical_output"] is True
    assert baseline["speedup"] >= REQUIRED_SPEEDUP
    fork = baseline["fork_per_job"]["per_job_ms"]
    persistent = baseline["persistent"]["per_job_ms"]
    assert fork / persistent >= REQUIRED_SPEEDUP


def test_persistent_dispatch_speedup_has_not_regressed(baseline):
    bench = _load_bench_module()
    record = bench.measure_all(jobs=24)
    assert record["identical_output"] is True
    assert record["speedup"] >= REGRESSION_LIMIT, (
        "persistent dispatch speedup %.2fx fell more than 10%% below the "
        "%.1fx contract (committed figure: %.2fx) — the pre-forked pool "
        "has lost its advantage over fork-per-job (measured: %r)"
        % (record["speedup"], REQUIRED_SPEEDUP, baseline["speedup"], record)
    )
