"""Tests for tensor.functional helpers (one_hot, nll_loss, dropout, linear)."""

import numpy as np
import pytest

from repro.tensor import Tensor, dropout, linear, log_softmax, nll_loss, one_hot


@pytest.fixture
def rng():
    return np.random.default_rng(171)


class TestOneHot:
    def test_basic(self):
        out = one_hot(np.array([0, 2, 1]), 3)
        np.testing.assert_array_equal(
            out.data, [[1, 0, 0], [0, 0, 1], [0, 1, 0]]
        )

    def test_accepts_tensor_labels(self):
        out = one_hot(Tensor(np.array([1, 0])), 2)
        np.testing.assert_array_equal(out.data, [[0, 1], [1, 0]])

    def test_detached(self):
        assert not one_hot(np.array([0]), 2).requires_grad

    def test_dtype(self):
        out = one_hot(np.array([0]), 2, dtype=np.float32)
        assert out.dtype == np.float32


class TestNllLoss:
    def _log_probs(self, rng, n=4, c=3, grad=True):
        return log_softmax(Tensor(rng.normal(size=(n, c)), requires_grad=grad))

    def test_mean_reduction_matches_manual(self, rng):
        lp = self._log_probs(rng)
        t = np.array([0, 1, 2, 0])
        loss = nll_loss(lp, t)
        manual = -lp.data[np.arange(4), t].mean()
        assert float(loss.data) == pytest.approx(manual)

    def test_sum_reduction(self, rng):
        lp = self._log_probs(rng)
        t = np.array([0, 1, 2, 0])
        loss = nll_loss(lp, t, reduction="sum")
        manual = -lp.data[np.arange(4), t].sum()
        assert float(loss.data) == pytest.approx(manual)

    def test_none_reduction_shape(self, rng):
        lp = self._log_probs(rng)
        t = np.array([0, 1, 2, 0])
        assert nll_loss(lp, t, reduction="none").shape == (4,)

    def test_weighted_mean_is_weighted(self, rng):
        """PyTorch semantics: mean divides by the summed sample weights."""
        lp = self._log_probs(rng)
        t = np.array([0, 1, 2, 0])
        w = np.array([2.0, 1.0, 1.0])
        loss = nll_loss(lp, t, weight=w)
        sample_w = w[t]
        manual = -(lp.data[np.arange(4), t] * sample_w).sum() / sample_w.sum()
        assert float(loss.data) == pytest.approx(manual)

    def test_unknown_reduction(self, rng):
        lp = self._log_probs(rng)
        with pytest.raises(ValueError):
            nll_loss(lp, np.array([0, 0, 0, 0]), reduction="avg")

    def test_gradient_for_each_reduction(self, rng):
        for reduction in ("mean", "sum"):
            lp = self._log_probs(rng)
            t = np.array([0, 1, 2, 0])
            nll_loss(lp, t, reduction=reduction).backward()

    def test_no_grad_input_returns_plain_tensor(self, rng):
        lp = self._log_probs(rng, grad=False)
        loss = nll_loss(lp, np.array([0, 1, 2, 0]))
        assert not loss.requires_grad


class TestDropout:
    def test_eval_is_identity(self, rng):
        x = Tensor(rng.normal(size=(5, 5)))
        out = dropout(x, p=0.9, training=False)
        assert out is x

    def test_p_zero_identity(self, rng):
        x = Tensor(rng.normal(size=(5, 5)))
        assert dropout(x, p=0.0) is x

    def test_mask_reused_in_backward(self, rng):
        x = Tensor(np.ones((200, 10)), requires_grad=True)
        out = dropout(x, p=0.5, rng=np.random.default_rng(0))
        out.sum().backward()
        # Gradient is exactly the mask: zero where dropped, 2 where kept.
        np.testing.assert_array_equal((x.grad == 0), (out.data == 0))

    def test_seeded_rng_reproducible(self, rng):
        x = Tensor(np.ones((50, 4)))
        a = dropout(x, 0.5, rng=np.random.default_rng(3)).data
        b = dropout(x, 0.5, rng=np.random.default_rng(3)).data
        np.testing.assert_array_equal(a, b)


class TestLinearFunctional:
    def test_matches_manual(self, rng):
        x = Tensor(rng.normal(size=(4, 3)))
        w = Tensor(rng.normal(size=(2, 3)))
        b = Tensor(rng.normal(size=(2,)))
        out = linear(x, w, b)
        np.testing.assert_allclose(out.data, x.data @ w.data.T + b.data)

    def test_no_bias(self, rng):
        x = Tensor(rng.normal(size=(4, 3)))
        w = Tensor(rng.normal(size=(2, 3)))
        np.testing.assert_allclose(linear(x, w).data, x.data @ w.data.T)
