"""Tests for the runtime tape sanitizer (detect_anomaly) and the
hardened validate_xy boundary."""

import numpy as np
import pytest

from repro._validation import validate_xy
from repro.analysis.sanitizer import array_version
from repro.tensor import (
    AnomalyError,
    Tensor,
    check_inplace_mutation_detected,
    detect_anomaly,
    is_anomaly_enabled,
    run_extended_checks,
)


class TestContextManager:
    def test_off_by_default(self):
        assert not is_anomaly_enabled()

    def test_enabled_inside_block(self):
        with detect_anomaly():
            assert is_anomaly_enabled()
        assert not is_anomaly_enabled()

    def test_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with detect_anomaly():
                raise RuntimeError("boom")
        assert not is_anomaly_enabled()

    def test_nesting_restores_outer_config(self):
        with detect_anomaly(check_mutation=False):
            with detect_anomaly(check_mutation=True):
                assert is_anomaly_enabled()
            assert is_anomaly_enabled()
        assert not is_anomaly_enabled()


class TestForwardNaN:
    def test_pinpoints_producing_op(self):
        with detect_anomaly():
            a = Tensor(np.array([1.0, -1.0]), requires_grad=True)
            with np.errstate(invalid="ignore"):
                with pytest.raises(AnomalyError) as exc:
                    a.log()  # log(-1) -> NaN at this op
        assert exc.value.op == "log"
        assert exc.value.site is not None

    def test_inf_also_trapped(self):
        with detect_anomaly():
            a = Tensor(np.array([0.0, 1.0]), requires_grad=True)
            with np.errstate(divide="ignore"):
                with pytest.raises(AnomalyError) as exc:
                    1.0 / a
        assert exc.value.op == "__truediv__"

    def test_nan_not_trapped_when_disabled(self):
        with detect_anomaly(check_nan=False):
            a = Tensor(np.array([1.0, -1.0]), requires_grad=True)
            with np.errstate(invalid="ignore"):
                out = a.log()
        assert np.isnan(out.data).any()

    def test_clean_forward_passes(self):
        with detect_anomaly():
            a = Tensor(np.array([1.0, 2.0]), requires_grad=True)
            out = (a * 3.0 + 1.0).sum()
        assert out.item() == pytest.approx(11.0)


class TestBackwardNaN:
    def test_pinpoints_producing_op(self):
        with detect_anomaly():
            a = Tensor(np.array([0.0, 4.0]), requires_grad=True)
            out = a.sqrt().sum()  # forward finite; d sqrt/dx at 0 -> inf
            with np.errstate(divide="ignore"):
                with pytest.raises(AnomalyError) as exc:
                    out.backward()
        assert exc.value.op == "sqrt"

    def test_non_finite_seed_grad_trapped(self):
        with detect_anomaly():
            a = Tensor(np.array([1.0, 2.0]), requires_grad=True)
            out = a * 2.0
            with pytest.raises(AnomalyError) as exc:
                out.backward(np.array([np.nan, 1.0]))
        assert exc.value.op == "backward"

    def test_clean_backward_passes(self):
        with detect_anomaly():
            a = Tensor(np.array([1.0, 2.0]), requires_grad=True)
            (a * a).sum().backward()
        np.testing.assert_allclose(a.grad, [2.0, 4.0])


class TestMutationDetection:
    def test_taped_array_mutation_raises(self):
        with detect_anomaly():
            a = Tensor(np.array([1.0, 2.0, 3.0]), requires_grad=True)
            out = (a * 2.0).sum()
            a.data[1] = 99.0
            with pytest.raises(AnomalyError) as exc:
                out.backward()
        assert "in-place mutation" in str(exc.value)
        assert exc.value.op == "__mul__"

    def test_mutation_check_can_be_disabled(self):
        with detect_anomaly(check_mutation=False):
            a = Tensor(np.array([1.0, 2.0, 3.0]), requires_grad=True)
            out = (a * 2.0).sum()
            a.data[1] = 99.0
            out.backward()  # silently wrong, but permitted when disabled
        assert a.grad is not None

    def test_untouched_graph_is_clean(self):
        with detect_anomaly():
            a = Tensor(np.array([1.0, 2.0, 3.0]), requires_grad=True)
            out = (a * 2.0).sum()
            out.backward()
        np.testing.assert_allclose(a.grad, [2.0, 2.0, 2.0])

    def test_array_version_tracks_buffer(self):
        arr = np.array([1.0, 2.0])
        v1 = array_version(arr)
        arr[0] = 5.0
        assert array_version(arr) != v1


class TestDtypeShapeInvariants:
    def test_float64_grad_into_float32_leaf(self):
        with detect_anomaly():
            small = Tensor(np.array([1.0, 2.0], dtype=np.float32),
                           requires_grad=True)
            wide = Tensor(np.array([3.0, 4.0]), requires_grad=True)  # float64
            out = (small * wide).sum()  # result upcasts to float64
            with pytest.raises(AnomalyError) as exc:
                out.backward()
        assert "precision widening" in str(exc.value)

    def test_uniform_float32_graph_is_clean(self):
        with detect_anomaly():
            a = Tensor(np.array([1.0, 2.0], dtype=np.float32), requires_grad=True)
            b = Tensor(np.array([3.0, 4.0], dtype=np.float32), requires_grad=True)
            (a * b).sum().backward()
        assert a.grad.dtype == np.float32

    def test_dtype_check_can_be_disabled(self):
        with detect_anomaly(check_dtype=False):
            small = Tensor(np.array([1.0, 2.0], dtype=np.float32),
                           requires_grad=True)
            wide = Tensor(np.array([3.0, 4.0]), requires_grad=True)
            (small * wide).sum().backward()
        assert small.grad is not None


class TestSanitizerOffByDefault:
    def test_no_provenance_recorded_when_off(self):
        a = Tensor(np.array([1.0]), requires_grad=True)
        out = a * 2.0
        assert out._anomaly is None

    def test_nan_flows_silently_when_off(self):
        a = Tensor(np.array([-1.0]), requires_grad=True)
        with np.errstate(invalid="ignore"):
            out = a.log()
        assert np.isnan(out.data).all()


class TestExtendedGradchecks:
    def test_inplace_mutation_check_fires(self):
        assert check_inplace_mutation_detected()

    def test_run_extended_checks_reports_all(self):
        names = run_extended_checks()
        assert len(names) == 5


class TestModelIntegration:
    def test_injected_nan_in_network_forward_is_attributed(self):
        from repro.nn import Linear, Sequential, ReLU

        rng = np.random.default_rng(3)
        model = Sequential(Linear(4, 8, rng=rng), ReLU(), Linear(8, 2, rng=rng))
        x = Tensor(rng.standard_normal((5, 4)))
        # Poison one weight with Inf: the first op that touches the
        # poisoned leaf is blamed (the fused linear_relu kernel when
        # Sequential fuses the Linear+ReLU pair).
        model[0].weight.data[0, 0] = np.inf
        with detect_anomaly():
            with pytest.raises(AnomalyError) as exc:
                model(x)
        assert exc.value.op in (
            "transpose", "__matmul__", "linear", "__add__", "linear_relu"
        )
        assert "layers.py" in exc.value.site

    def test_clean_training_step_under_sanitizer(self):
        from repro.losses import CrossEntropyLoss
        from repro.nn import Linear

        from repro.tensor import default_dtype

        rng = np.random.default_rng(4)
        layer = Linear(6, 3, rng=rng)
        # Inputs must match the parameter dtype, or the sanitizer
        # rightly flags float64 gradients widening into float32 params.
        x = Tensor(rng.standard_normal((8, 6)), dtype=default_dtype())
        y = np.array([0, 1, 2, 0, 1, 2, 0, 1])
        loss_fn = CrossEntropyLoss()
        with detect_anomaly():
            loss = loss_fn(layer(x), y)
            loss.backward()
        assert layer.weight.grad is not None
        assert np.isfinite(layer.weight.grad).all()


class TestValidateXYNonFinite:
    def test_rejects_nan(self):
        x = np.ones((4, 2))
        x[2, 1] = np.nan
        with pytest.raises(ValueError, match="non-finite"):
            validate_xy(x, np.zeros(4, dtype=int))

    def test_rejects_inf(self):
        x = np.ones((4, 2))
        x[0, 0] = np.inf
        with pytest.raises(ValueError, match="row 0"):
            validate_xy(x, np.zeros(4, dtype=int))

    def test_accepts_finite(self):
        x, y = validate_xy(np.ones((4, 2)), np.zeros(4, dtype=int))
        assert x.dtype == np.float64 and y.dtype == np.int64

    @pytest.mark.parametrize(
        "sampler_name",
        ["SMOTE", "ADASYN", "RandomOverSampler", "CCR", "SWIM"],
    )
    def test_samplers_reject_nan_embeddings(self, sampler_name, blob_data):
        import repro.sampling as sampling

        x, y = blob_data
        x = x.copy()
        x[0, 0] = np.nan
        sampler = getattr(sampling, sampler_name)(random_state=0)
        with pytest.raises(ValueError, match="non-finite"):
            sampler.fit_resample(x, y)

    def test_eos_rejects_nan_embeddings(self, blob_data):
        from repro import EOS

        x, y = blob_data
        x = x.copy()
        x[3, 1] = np.inf
        with pytest.raises(ValueError, match="non-finite"):
            EOS(k_neighbors=3).fit_resample(x, y)
