"""Tests for the Trainer and the three-phase training framework."""

import numpy as np
import pytest

from repro.core import (
    EOS,
    ThreePhaseTrainer,
    Trainer,
    extract_features,
    finetune_classifier,
)
from repro.data import ArrayDataset
from repro.losses import CrossEntropyLoss
from repro.nn import SmallConvNet
from repro.optim import SGD


@pytest.fixture
def rng():
    return np.random.default_rng(81)


@pytest.fixture
def easy_dataset(rng):
    """A 3-class image task with channel-coded classes; 60/12/4 imbalance."""
    counts = [60, 12, 4]
    images, labels = [], []
    for c, n in enumerate(counts):
        imgs = rng.normal(0.3, 0.1, size=(n, 3, 8, 8))
        imgs[:, c] += 0.6
        images.append(imgs)
        labels += [c] * n
    return ArrayDataset(np.concatenate(images), np.array(labels))


def make_trainer(rng, sampler=None, num_classes=3):
    model = SmallConvNet(num_classes=num_classes, width=4, rng=rng)
    opt = SGD(model.parameters(), lr=0.05, momentum=0.9)
    return ThreePhaseTrainer(model, CrossEntropyLoss(), opt, sampler=sampler)


class TestTrainer:
    def test_loss_decreases(self, easy_dataset, rng):
        model = SmallConvNet(num_classes=3, width=4, rng=rng)
        trainer = Trainer(
            model, CrossEntropyLoss(), SGD(model.parameters(), lr=0.05, momentum=0.9)
        )
        history = trainer.fit(easy_dataset, epochs=6, rng=rng)
        assert history[-1]["loss"] < history[0]["loss"]

    def test_history_records_eval(self, easy_dataset, rng):
        model = SmallConvNet(num_classes=3, width=4, rng=rng)
        trainer = Trainer(
            model, CrossEntropyLoss(), SGD(model.parameters(), lr=0.05)
        )
        history = trainer.fit(
            easy_dataset, epochs=2, rng=rng, eval_dataset=easy_dataset
        )
        assert "bac" in history[0]

    def test_scheduler_stepped(self, easy_dataset, rng):
        from repro.optim import StepLR

        model = SmallConvNet(num_classes=3, width=4, rng=rng)
        opt = SGD(model.parameters(), lr=1.0)
        trainer = Trainer(model, CrossEntropyLoss(), opt, StepLR(opt, 1, 0.5))
        trainer.fit(easy_dataset, epochs=3, rng=rng)
        assert opt.lr == pytest.approx(0.125)

    def test_predict_shape(self, easy_dataset, rng):
        model = SmallConvNet(num_classes=3, width=4, rng=rng)
        trainer = Trainer(model, CrossEntropyLoss(), SGD(model.parameters(), lr=0.1))
        preds = trainer.predict(easy_dataset.images)
        assert preds.shape == (len(easy_dataset),)
        assert preds.dtype.kind == "i"

    def test_extract_features_dim(self, easy_dataset, rng):
        model = SmallConvNet(num_classes=3, width=4, rng=rng)
        trainer = Trainer(model, CrossEntropyLoss(), SGD(model.parameters(), lr=0.1))
        features = trainer.extract_features(easy_dataset)
        assert features.shape == (len(easy_dataset), model.feature_dim)

    def test_extraction_uses_eval_mode(self, easy_dataset, rng):
        """Feature extraction must be deterministic (BN in eval mode)."""
        model = SmallConvNet(num_classes=3, width=4, rng=rng)
        # Push running stats away from init.
        trainer = Trainer(model, CrossEntropyLoss(), SGD(model.parameters(), lr=0.05))
        trainer.fit(easy_dataset, epochs=1, rng=rng)
        f1 = extract_features(model, easy_dataset.images, batch_size=16)
        f2 = extract_features(model, easy_dataset.images, batch_size=64)
        np.testing.assert_allclose(f1, f2, rtol=1e-5, atol=1e-6)
        assert model.training  # mode restored


class TestFinetuneClassifier:
    def test_only_head_changes(self, easy_dataset, rng):
        model = SmallConvNet(num_classes=3, width=4, rng=rng)
        conv_before = model.conv1.weight.data.copy()
        head_before = model.classifier.weight.data.copy()
        emb = rng.normal(size=(50, model.feature_dim))
        labels = rng.integers(0, 3, 50)
        finetune_classifier(model, emb, labels, epochs=3, rng=rng)
        np.testing.assert_array_equal(model.conv1.weight.data, conv_before)
        assert not np.array_equal(model.classifier.weight.data, head_before)

    def test_loss_decreases(self, rng):
        model = SmallConvNet(num_classes=2, width=4, rng=rng)
        emb = np.concatenate(
            [rng.normal(-1, 0.3, (40, 16)), rng.normal(1, 0.3, (40, 16))]
        )
        labels = np.array([0] * 40 + [1] * 40)
        history = finetune_classifier(model, emb, labels, epochs=8, rng=rng)
        assert history[-1]["loss"] < history[0]["loss"]

    def test_reinitialize_resets_head(self, rng):
        model = SmallConvNet(num_classes=3, width=4, rng=rng)
        model.classifier.weight.data[...] = 123.0
        emb = rng.normal(size=(10, model.feature_dim))
        finetune_classifier(
            model, emb, rng.integers(0, 3, 10), epochs=0, reinitialize=True, rng=rng
        )
        assert np.abs(model.classifier.weight.data).max() < 10.0

    def test_eval_hook_merged_into_history(self, rng):
        model = SmallConvNet(num_classes=2, width=4, rng=rng)
        emb = rng.normal(size=(20, model.feature_dim))
        history = finetune_classifier(
            model,
            emb,
            rng.integers(0, 2, 20),
            epochs=2,
            rng=rng,
            eval_hook=lambda epoch: {"marker": epoch * 10},
        )
        assert history[1]["marker"] == 10


class TestThreePhaseTrainer:
    def test_full_pipeline_improves_minority(self, easy_dataset, rng):
        tpt = make_trainer(np.random.default_rng(1), sampler=EOS(k_neighbors=5))
        tpt.run(easy_dataset, phase1_epochs=8, rng=rng)
        metrics = tpt.evaluate(easy_dataset)
        assert metrics["bac"] > 0.6

    def test_phase_ordering_enforced(self, rng):
        tpt = make_trainer(rng)
        with pytest.raises(RuntimeError):
            tpt.resample_embeddings()
        with pytest.raises(RuntimeError):
            tpt.finetune()

    def test_resample_balances(self, easy_dataset, rng):
        tpt = make_trainer(np.random.default_rng(2), sampler=EOS(k_neighbors=5))
        tpt.train_phase1(easy_dataset, epochs=3, rng=rng)
        tpt.extract_embeddings(easy_dataset)
        emb, labels = tpt.resample_embeddings()
        np.testing.assert_array_equal(np.bincount(labels), [60, 60, 60])

    def test_none_sampler_passthrough(self, easy_dataset, rng):
        tpt = make_trainer(np.random.default_rng(3), sampler=None)
        tpt.train_phase1(easy_dataset, epochs=2, rng=rng)
        tpt.extract_embeddings(easy_dataset)
        emb, labels = tpt.resample_embeddings()
        assert len(labels) == len(easy_dataset)

    def test_pluggable_sampler(self, easy_dataset, rng):
        """Any fit_resample object works in phase 2 (framework is generic)."""
        from repro.sampling import SMOTE

        tpt = make_trainer(np.random.default_rng(4), sampler=SMOTE(k_neighbors=3))
        tpt.run(easy_dataset, phase1_epochs=3, rng=rng)
        assert tpt.balanced_labels is not None

    def test_timings_recorded(self, easy_dataset, rng):
        tpt = make_trainer(np.random.default_rng(5), sampler=EOS(k_neighbors=3))
        tpt.run(easy_dataset, phase1_epochs=2, rng=rng)
        assert set(tpt.timings) == {"phase1", "extract", "resample", "finetune"}
        assert tpt.total_time() > 0

    def test_finetune_improves_balanced_accuracy(self, easy_dataset, rng):
        """The paper's core framework claim: balancing embeddings and
        fine-tuning the head improves BAC over the raw imbalanced model."""
        tpt = make_trainer(np.random.default_rng(6), sampler=EOS(k_neighbors=5))
        tpt.train_phase1(easy_dataset, epochs=8, rng=np.random.default_rng(7))
        before = tpt.phase1.evaluate(easy_dataset)["bac"]
        tpt.extract_embeddings(easy_dataset)
        tpt.resample_embeddings()
        tpt.finetune(epochs=10, rng=np.random.default_rng(8))
        after = tpt.evaluate(easy_dataset)["bac"]
        assert after >= before - 0.02
