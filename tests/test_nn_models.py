"""Tests for the CNN architectures and the feature/head split."""

import numpy as np
import pytest

from repro.nn import (
    DenseNet,
    ResNet,
    SmallConvNet,
    WideResNet,
    build_model,
    resnet8,
    resnet32,
    resnet56,
)
from repro.tensor import Tensor


@pytest.fixture
def rng():
    return np.random.default_rng(5)


@pytest.fixture
def images(rng):
    return Tensor(rng.normal(size=(4, 3, 12, 12)))


class TestResNet:
    def test_depth_formula_enforced(self):
        with pytest.raises(ValueError):
            ResNet(depth=10)

    def test_forward_shapes(self, images, rng):
        model = resnet8(num_classes=7, width_multiplier=0.25, rng=rng)
        features = model.forward_features(images)
        assert features.shape == (4, model.feature_dim)
        logits = model(images)
        assert logits.shape == (4, 7)

    def test_head_matches_composition(self, images, rng):
        model = resnet8(num_classes=5, width_multiplier=0.25, rng=rng)
        model.eval()
        features = model.forward_features(images)
        np.testing.assert_allclose(
            model(images).data, model.forward_head(features).data
        )

    def test_resnet32_paper_scale_structure(self):
        """The paper's ResNet-32: ~464K parameters, 64-dim embeddings."""
        model = resnet32(num_classes=10)
        assert model.feature_dim == 64
        n = model.num_parameters()
        assert 400_000 < n < 530_000

    def test_resnet56_paper_scale_structure(self):
        model = resnet56(num_classes=5)
        assert model.feature_dim == 64
        assert model.num_parameters() > resnet32(num_classes=5).num_parameters()

    def test_width_multiplier_scales_params(self, rng):
        small = resnet8(width_multiplier=0.25, rng=rng)
        big = resnet8(width_multiplier=1.0, rng=rng)
        assert big.num_parameters() > 4 * small.num_parameters()

    def test_stride_downsampling(self, rng):
        """Stage 2/3 halve the spatial dims; GAP handles any input size."""
        model = resnet8(num_classes=3, width_multiplier=0.25, rng=rng)
        for size in (8, 12, 16):
            x = Tensor(np.random.default_rng(0).normal(size=(2, 3, size, size)))
            assert model(x).shape == (2, 3)

    def test_gradients_flow_to_first_conv(self, images, rng):
        model = resnet8(num_classes=4, width_multiplier=0.25, rng=rng)
        model(images).sum().backward()
        assert model.conv1.weight.grad is not None
        assert np.abs(model.conv1.weight.grad).max() > 0


class TestWideResNet:
    def test_depth_formula(self):
        with pytest.raises(ValueError):
            WideResNet(depth=12)

    def test_forward(self, images, rng):
        model = WideResNet(
            depth=10, widen_factor=2, num_classes=6, width_multiplier=0.25, rng=rng
        )
        assert model(images).shape == (4, 6)

    def test_widen_factor_increases_feature_dim(self, rng):
        narrow = WideResNet(depth=10, widen_factor=1, width_multiplier=0.25, rng=rng)
        wide = WideResNet(depth=10, widen_factor=4, width_multiplier=0.25, rng=rng)
        assert wide.feature_dim == 4 * narrow.feature_dim


class TestDenseNet:
    def test_forward(self, images, rng):
        model = DenseNet(
            growth_rate=4, block_layers=(2, 2, 2), num_classes=6, rng=rng
        )
        assert model(images).shape == (4, 6)

    def test_feature_dim_tracks_growth(self, rng):
        m1 = DenseNet(growth_rate=4, block_layers=(2, 2, 2), rng=rng)
        m2 = DenseNet(growth_rate=8, block_layers=(2, 2, 2), rng=rng)
        assert m2.feature_dim > m1.feature_dim

    def test_gradients_flow(self, images, rng):
        model = DenseNet(growth_rate=4, block_layers=(1, 1, 1), rng=rng)
        model(images).sum().backward()
        assert model.conv1.weight.grad is not None


class TestSmallConvNet:
    def test_feature_dim(self, rng):
        model = SmallConvNet(num_classes=3, width=4, rng=rng)
        assert model.feature_dim == 16

    def test_learns_separable_blobs(self, rng):
        """Sanity: the net learns a linearly-separable 2-class image task."""
        from repro.losses import CrossEntropyLoss
        from repro.optim import SGD

        n = 40
        images = rng.normal(size=(n, 3, 8, 8)) * 0.1
        labels = np.array([0, 1] * (n // 2))
        images[labels == 1, 0] += 1.0  # class 1 has a bright red channel
        model = SmallConvNet(num_classes=2, width=4, rng=rng)
        opt = SGD(model.parameters(), lr=0.1, momentum=0.9)
        loss = CrossEntropyLoss()
        for _ in range(30):
            opt.zero_grad()
            value = loss(model(Tensor(images)), labels)
            value.backward()
            opt.step()
        model.eval()
        preds = model(Tensor(images)).data.argmax(axis=1)
        assert (preds == labels).mean() >= 0.95


class TestRegistry:
    def test_build_model_names(self, rng):
        model = build_model("resnet8", num_classes=3, width_multiplier=0.25, rng=rng)
        assert isinstance(model, ResNet)

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            build_model("alexnet")

    @pytest.mark.parametrize(
        "name,kwargs",
        [
            ("resnet8", {"width_multiplier": 0.25}),
            ("resnet14", {"width_multiplier": 0.25}),
            ("wideresnet", {"depth": 10, "width_multiplier": 0.25}),
            ("densenet", {"growth_rate": 4, "block_layers": (1, 1, 1)}),
            ("smallconvnet", {"width": 4}),
        ],
    )
    def test_all_registered_models_run(self, name, kwargs, rng):
        model = build_model(name, num_classes=4, rng=rng, **kwargs)
        x = Tensor(rng.normal(size=(2, 3, 12, 12)))
        assert model(x).shape == (2, 4)
        assert model.forward_features(x).shape == (2, model.feature_dim)
