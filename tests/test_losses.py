"""Tests for the imbalanced-learning losses (CE, Focal, LDAM, ASL)."""

import numpy as np
import pytest

from repro.losses import (
    AsymmetricLoss,
    CrossEntropyLoss,
    FocalLoss,
    LDAMLoss,
    build_loss,
    class_balanced_weights,
)
from repro.tensor import Tensor


@pytest.fixture
def rng():
    return np.random.default_rng(11)


@pytest.fixture
def logits(rng):
    return Tensor(rng.normal(size=(8, 4)), requires_grad=True)


@pytest.fixture
def targets(rng):
    return rng.integers(0, 4, size=8)


def numeric_loss_grad(loss, logits_data, targets, eps=1e-6):
    grad = np.zeros_like(logits_data)
    for i in range(logits_data.shape[0]):
        for j in range(logits_data.shape[1]):
            up = logits_data.copy()
            up[i, j] += eps
            down = logits_data.copy()
            down[i, j] -= eps
            hi = float(loss(Tensor(up), targets).data)
            lo = float(loss(Tensor(down), targets).data)
            grad[i, j] = (hi - lo) / (2 * eps)
    return grad


class TestCrossEntropy:
    def test_matches_manual_computation(self, rng):
        logits = Tensor(rng.normal(size=(5, 3)))
        targets = np.array([0, 1, 2, 0, 1])
        loss = CrossEntropyLoss()(logits, targets)
        z = logits.data
        log_probs = z - np.log(np.exp(z).sum(axis=1, keepdims=True))
        expected = -log_probs[np.arange(5), targets].mean()
        assert float(loss.data) == pytest.approx(expected)

    def test_perfect_prediction_near_zero(self):
        logits = Tensor(np.array([[100.0, 0.0], [0.0, 100.0]]))
        loss = CrossEntropyLoss()(logits, np.array([0, 1]))
        assert float(loss.data) == pytest.approx(0.0, abs=1e-6)

    def test_gradient_is_softmax_minus_onehot(self, rng):
        logits = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        targets = np.array([0, 1, 2, 1])
        CrossEntropyLoss()(logits, targets).backward()
        probs = np.exp(logits.data)
        probs /= probs.sum(axis=1, keepdims=True)
        expected = probs.copy()
        expected[np.arange(4), targets] -= 1.0
        np.testing.assert_allclose(logits.grad, expected / 4, atol=1e-10)

    def test_class_weights_emphasize_minority(self, rng):
        logits = Tensor(rng.normal(size=(6, 2)))
        targets = np.array([0, 0, 0, 0, 0, 1])
        plain = float(CrossEntropyLoss()(logits, targets).data)
        weighted = float(
            CrossEntropyLoss(weight=[1.0, 100.0])(logits, targets).data
        )
        # The weighted mean shifts toward the minority sample's loss.
        minority_loss = float(
            CrossEntropyLoss()(
                Tensor(logits.data[5:6]), targets[5:6]
            ).data
        )
        assert abs(weighted - minority_loss) < abs(plain - minority_loss)

    def test_numeric_gradient(self, rng, targets):
        data = rng.normal(size=(8, 4))
        loss = CrossEntropyLoss()
        logits = Tensor(data, requires_grad=True)
        loss(logits, targets).backward()
        numeric = numeric_loss_grad(loss, data, targets)
        np.testing.assert_allclose(logits.grad, numeric, atol=1e-5)


class TestFocal:
    def test_gamma_zero_equals_ce(self, rng, targets):
        data = rng.normal(size=(8, 4))
        ce = float(CrossEntropyLoss()(Tensor(data), targets).data)
        focal = float(FocalLoss(gamma=0.0)(Tensor(data), targets).data)
        assert focal == pytest.approx(ce)

    def test_downweights_easy_examples(self):
        easy = Tensor(np.array([[6.0, 0.0]]))
        hard = Tensor(np.array([[0.5, 0.0]]))
        t = np.array([0])
        gamma = 2.0
        ce_ratio = float(CrossEntropyLoss()(hard, t).data) / float(
            CrossEntropyLoss()(easy, t).data
        )
        focal_ratio = float(FocalLoss(gamma)(hard, t).data) / float(
            FocalLoss(gamma)(easy, t).data
        )
        assert focal_ratio > ce_ratio

    def test_negative_gamma_rejected(self):
        with pytest.raises(ValueError):
            FocalLoss(gamma=-1.0)

    def test_numeric_gradient(self, rng, targets):
        data = rng.normal(size=(8, 4))
        loss = FocalLoss(gamma=2.0)
        logits = Tensor(data, requires_grad=True)
        loss(logits, targets).backward()
        numeric = numeric_loss_grad(loss, data, targets)
        np.testing.assert_allclose(logits.grad, numeric, atol=1e-5)

    def test_alpha_weighting(self, rng, targets):
        data = rng.normal(size=(8, 4))
        plain = float(FocalLoss(2.0)(Tensor(data), targets).data)
        weighted = float(
            FocalLoss(2.0, weight=np.ones(4) * 3.0)(Tensor(data), targets).data
        )
        assert weighted == pytest.approx(3.0 * plain)


class TestLDAM:
    def test_margins_larger_for_minority(self):
        loss = LDAMLoss([1000, 100, 10])
        assert loss.margins[2] > loss.margins[1] > loss.margins[0]
        assert loss.margins.max() == pytest.approx(0.5)

    def test_margin_raises_loss_for_true_class(self, rng):
        counts = [100, 10]
        data = rng.normal(size=(6, 2))
        t = np.array([1] * 6)
        ldam = float(LDAMLoss(counts, scale=1.0)(Tensor(data), t).data)
        ce = float(CrossEntropyLoss()(Tensor(data), t).data)
        assert ldam > ce  # subtracting the margin makes the task harder

    def test_drw_schedule_switches_weights(self):
        loss = LDAMLoss([100, 10], drw_epoch=5)
        loss.set_epoch(0)
        assert loss._active_weight is None
        loss.set_epoch(5)
        assert loss._active_weight is not None
        # DRW weights favor the minority class.
        assert loss._active_weight[1] > loss._active_weight[0]

    def test_invalid_counts_rejected(self):
        with pytest.raises(ValueError):
            LDAMLoss([10, 0])

    def test_numeric_gradient(self, rng, targets):
        data = rng.normal(size=(8, 4))
        loss = LDAMLoss([40, 30, 20, 10], scale=5.0)
        logits = Tensor(data, requires_grad=True)
        loss(logits, targets).backward()
        numeric = numeric_loss_grad(loss, data, targets)
        np.testing.assert_allclose(logits.grad, numeric, atol=1e-4)


class TestASL:
    def test_positive_loss(self, rng, targets):
        data = rng.normal(size=(8, 4))
        assert float(AsymmetricLoss()(Tensor(data), targets).data) > 0

    def test_clip_shifts_easy_negatives_to_zero(self):
        # A confident negative (p < clip) contributes ~nothing.
        logits = Tensor(np.array([[8.0, -8.0]]))
        t = np.array([0])
        with_clip = float(AsymmetricLoss(clip=0.05)(logits, t).data)
        without = float(AsymmetricLoss(clip=0.0)(logits, t).data)
        assert with_clip <= without

    def test_gamma_neg_downweights_negatives(self, rng, targets):
        data = rng.normal(size=(8, 4))
        hi = float(AsymmetricLoss(gamma_neg=0.0, clip=0.0)(Tensor(data), targets).data)
        lo = float(AsymmetricLoss(gamma_neg=6.0, clip=0.0)(Tensor(data), targets).data)
        assert lo < hi

    def test_invalid_clip(self):
        with pytest.raises(ValueError):
            AsymmetricLoss(clip=1.5)

    def test_gradient_flows(self, rng, targets):
        logits = Tensor(rng.normal(size=(8, 4)), requires_grad=True)
        AsymmetricLoss()(logits, targets).backward()
        assert logits.grad is not None
        assert np.abs(logits.grad).max() > 0


class TestClassBalancedWeights:
    def test_minority_gets_higher_weight(self):
        w = class_balanced_weights([1000, 10])
        assert w[1] > w[0]

    def test_normalized_to_num_classes(self):
        w = class_balanced_weights([50, 30, 20])
        assert w.sum() == pytest.approx(3.0)

    def test_beta_zero_is_uniform(self):
        w = class_balanced_weights([100, 1], beta=0.0)
        np.testing.assert_allclose(w, [1.0, 1.0])

    def test_invalid_counts(self):
        with pytest.raises(ValueError):
            class_balanced_weights([10, -1])


class TestRegistry:
    @pytest.mark.parametrize("name", ["ce", "focal", "ldam", "asl"])
    def test_build_all(self, name, rng):
        loss = build_loss(name, class_counts=[30, 20, 10])
        logits = Tensor(rng.normal(size=(5, 3)), requires_grad=True)
        value = loss(logits, np.array([0, 1, 2, 0, 1]))
        value.backward()
        assert np.isfinite(float(value.data))

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            build_loss("hinge")
