"""Tests for the DeepSMOTE over-sampler (autoencoder + latent SMOTE)."""

import numpy as np
import pytest

from repro.gans import DeepSMOTE


@pytest.fixture
def rng():
    return np.random.default_rng(161)


@pytest.fixture
def blobs(rng):
    x = np.concatenate(
        [rng.normal(0.0, 1.0, size=(80, 6)), rng.normal(3.0, 0.5, size=(8, 6))]
    )
    y = np.array([0] * 80 + [1] * 8)
    return x, y


FAST = dict(ae_epochs=120, random_state=0)


class TestDeepSMOTE:
    def test_balances(self, blobs):
        x, y = blobs
        xr, yr = DeepSMOTE(**FAST).fit_resample(x, y)
        np.testing.assert_array_equal(np.bincount(yr), [80, 80])

    def test_originals_prefix(self, blobs):
        x, y = blobs
        xr, yr = DeepSMOTE(**FAST).fit_resample(x, y)
        np.testing.assert_array_equal(xr[: len(x)], x)

    def test_synthetic_near_minority(self, blobs):
        x, y = blobs
        xr, yr = DeepSMOTE(**FAST).fit_resample(x, y)
        synth = xr[len(x):]
        d_min = np.linalg.norm(synth - 3.0, axis=1).mean()
        d_maj = np.linalg.norm(synth - 0.0, axis=1).mean()
        assert d_min < d_maj

    def test_records_fit_time(self, blobs):
        x, y = blobs
        sampler = DeepSMOTE(**FAST)
        sampler.fit_resample(x, y)
        assert sampler.fit_seconds > 0

    def test_balanced_input_noop(self, rng):
        x = rng.normal(size=(20, 4))
        y = np.array([0, 1] * 10)
        xr, yr = DeepSMOTE(**FAST).fit_resample(x, y)
        assert len(xr) == 20

    def test_deterministic(self, blobs):
        x, y = blobs
        a = DeepSMOTE(**FAST).fit_resample(x, y)
        b = DeepSMOTE(**FAST).fit_resample(x, y)
        np.testing.assert_allclose(a[0], b[0])

    def test_permute_reconstruction_flag(self, blobs):
        """Both training modes must run; permuted reconstruction yields a
        different (class-level) autoencoder."""
        x, y = blobs
        a = DeepSMOTE(permute_reconstruction=True, **FAST).fit_resample(x, y)
        b = DeepSMOTE(permute_reconstruction=False, **FAST).fit_resample(x, y)
        assert not np.allclose(a[0][len(x):], b[0][len(x):])

    def test_registry_integration(self, blobs):
        from repro.experiments import build_sampler

        x, y = blobs
        sampler = build_sampler("deepsmote", random_state=0, ae_epochs=60)
        xr, yr = sampler.fit_resample(x, y)
        np.testing.assert_array_equal(np.bincount(yr), [80, 80])
