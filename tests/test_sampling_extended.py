"""Tests for the extended samplers: RBO, CCR, SWIM, Tomek links, ENN."""

import numpy as np
import pytest

from repro.sampling import (
    CCR,
    SWIM,
    EditedNearestNeighbors,
    RadialBasedOversampler,
    TomekLinks,
    find_tomek_links,
)


@pytest.fixture
def rng():
    return np.random.default_rng(141)


@pytest.fixture
def overlapping(rng):
    """Two overlapping classes, 60 vs 8."""
    x = np.concatenate(
        [rng.normal(0.0, 1.0, size=(60, 2)), rng.normal([1.5, 0.0], 0.7, size=(8, 2))]
    )
    y = np.array([0] * 60 + [1] * 8)
    return x, y


class TestRBO:
    def test_balances(self, overlapping):
        x, y = overlapping
        xr, yr = RadialBasedOversampler(random_state=0).fit_resample(x, y)
        np.testing.assert_array_equal(np.bincount(yr), [60, 60])

    def test_originals_prefix(self, overlapping):
        x, y = overlapping
        xr, yr = RadialBasedOversampler(random_state=0).fit_resample(x, y)
        np.testing.assert_array_equal(xr[: len(x)], x)

    def test_hill_climbing_improves_potential(self, overlapping):
        """Synthetic points must sit at higher minority potential than
        unrefined random jitters."""
        x, y = overlapping
        sampler = RadialBasedOversampler(steps=30, random_state=0)
        xr, yr = sampler.fit_resample(x, y)
        synth = xr[len(x):]
        x_min, x_maj = x[y == 1], x[y == 0]
        pot_synth = sampler._potential(synth, x_min, x_maj)

        rng = np.random.default_rng(1)
        naive = x_min[rng.integers(0, len(x_min), len(synth))] + rng.normal(
            0, x_min.std(axis=0) * 0.5, (len(synth), 2)
        )
        pot_naive = sampler._potential(naive, x_min, x_maj)
        assert pot_synth.mean() > pot_naive.mean()

    def test_zero_steps_is_plain_jitter(self, overlapping):
        x, y = overlapping
        xr, yr = RadialBasedOversampler(steps=0, random_state=0).fit_resample(x, y)
        assert np.bincount(yr)[1] == 60

    def test_singleton_duplicates(self, rng):
        x = np.concatenate([rng.normal(size=(10, 2)), [[5.0, 5.0]]])
        y = np.array([0] * 10 + [1])
        xr, yr = RadialBasedOversampler(random_state=0).fit_resample(x, y)
        np.testing.assert_allclose(xr[11:], [[5.0, 5.0]] * 9)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            RadialBasedOversampler(gamma=0.0)
        with pytest.raises(ValueError):
            RadialBasedOversampler(steps=-1)


class TestCCR:
    def test_balances(self, overlapping):
        x, y = overlapping
        xr, yr = CCR(random_state=0).fit_resample(x, y)
        np.testing.assert_array_equal(np.bincount(yr), [60, 60])

    def test_cleaning_pushes_majority_out(self, rng):
        """Majority points caught inside a minority sphere must move."""
        minority = np.array([[0.0, 0.0]])
        crowd = rng.normal(0.0, 0.05, size=(10, 2))  # right on top of it
        far = rng.normal([5.0, 5.0], 0.1, size=(30, 2))
        x = np.concatenate([crowd, far, minority])
        y = np.array([0] * 40 + [1])
        sampler = CCR(energy=1.0, random_state=0)
        xr, yr = sampler.fit_resample(x, y)
        moved = xr[:10]
        # All crowding points pushed to at least the sphere radius.
        dist = np.linalg.norm(moved - minority[0], axis=1)
        assert dist.min() > np.linalg.norm(crowd - minority[0], axis=1).min()

    def test_far_majority_untouched(self, rng):
        minority = np.array([[0.0, 0.0], [0.2, 0.0]])
        far = rng.normal([10.0, 10.0], 0.1, size=(30, 2))
        x = np.concatenate([far, minority])
        y = np.array([0] * 30 + [1, 1])
        xr, yr = CCR(energy=0.25, random_state=0).fit_resample(x, y)
        np.testing.assert_allclose(xr[:30], far)

    def test_synthetic_within_spheres(self, overlapping):
        """Synthetic points stay within max sphere radius of a minority
        point (spheres bound the generation region)."""
        x, y = overlapping
        sampler = CCR(energy=0.5, random_state=0)
        xr, yr = sampler.fit_resample(x, y)
        synth = xr[len(x):]
        minority = x[y == 1]
        d = np.sqrt(
            ((synth[:, None, :] - minority[None, :, :]) ** 2).sum(axis=2)
        ).min(axis=1)
        assert d.max() <= 0.5 + 1e-6  # radius can't exceed the energy budget

    def test_harder_points_get_more_samples(self, rng):
        """Inverse-radius allocation: the minority point crowded by
        majority neighbors seeds more synthetic points."""
        crowded = np.array([[0.0, 0.0]])
        isolated = np.array([[50.0, 50.0]])
        majority = rng.normal(0.0, 0.3, size=(40, 2))
        x = np.concatenate([majority, crowded, isolated])
        y = np.array([0] * 40 + [1, 1])
        sampler = CCR(energy=0.5, random_state=0)
        xr, yr = sampler.fit_resample(x, y)
        synth = xr[42:]
        near_crowded = (np.linalg.norm(synth - crowded, axis=1) < 25).sum()
        near_isolated = (np.linalg.norm(synth - isolated, axis=1) < 25).sum()
        assert near_crowded > near_isolated

    def test_invalid_energy(self):
        with pytest.raises(ValueError):
            CCR(energy=0.0)


class TestSWIM:
    def test_balances(self, overlapping):
        x, y = overlapping
        xr, yr = SWIM(random_state=0).fit_resample(x, y)
        np.testing.assert_array_equal(np.bincount(yr), [60, 60])

    def test_preserves_majority_density_contour(self, rng):
        """Synthetic points keep (roughly) their seed's Mahalanobis
        radius w.r.t. the majority distribution."""
        majority = rng.normal(0.0, 1.0, size=(300, 3))
        minority = rng.normal(2.5, 0.2, size=(4, 3))
        x = np.concatenate([majority, minority])
        y = np.array([0] * 300 + [1] * 4)
        sampler = SWIM(spread=0.3, random_state=0)
        xr, yr = sampler.fit_resample(x, y)
        synth = xr[len(x):]

        mean, w, _ = sampler._whitener(majority)
        seed_radii = np.linalg.norm((minority - mean) @ w, axis=1)
        synth_radii = np.linalg.norm((synth - mean) @ w, axis=1)
        assert synth_radii.min() > seed_radii.min() * 0.8
        assert synth_radii.max() < seed_radii.max() * 1.2

    def test_spreads_beyond_seeds(self, rng):
        """Unlike duplication, SWIM samples genuinely new locations."""
        majority = rng.normal(0.0, 1.0, size=(200, 2))
        minority = rng.normal([2.0, 0.0], 0.05, size=(3, 2))
        x = np.concatenate([majority, minority])
        y = np.array([0] * 200 + [1] * 3)
        xr, yr = SWIM(spread=0.5, random_state=0).fit_resample(x, y)
        synth = xr[len(x):]
        d_to_seeds = np.sqrt(
            ((synth[:, None, :] - minority[None, :, :]) ** 2).sum(axis=2)
        ).min(axis=1)
        assert d_to_seeds.max() > 0.3

    def test_fallback_with_tiny_majority(self, rng):
        x = np.concatenate([rng.normal(size=(2, 4)), rng.normal(3, 1, (6, 4))])
        y = np.array([1, 1, 0, 0, 0, 0, 0, 0])
        xr, yr = SWIM(random_state=0).fit_resample(x, y)
        np.testing.assert_array_equal(np.bincount(yr), [6, 6])

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            SWIM(spread=0.0)
        with pytest.raises(ValueError):
            SWIM(shrink_reg=-1.0)


class TestTomekLinks:
    def test_finds_known_link(self):
        x = np.array([[0.0], [0.4], [5.0], [5.3]])
        y = np.array([0, 1, 0, 0])
        links = find_tomek_links(x, y)
        assert links.shape == (1, 2)
        assert set(links[0]) == {0, 1}

    def test_same_class_pair_not_link(self):
        x = np.array([[0.0], [0.1], [9.0]])
        y = np.array([0, 0, 1])
        assert find_tomek_links(x, y).size == 0

    def test_majority_member_removed(self):
        x = np.array([[0.0], [0.4], [5.0], [5.5], [6.0]])
        y = np.array([1, 0, 0, 0, 0])
        xr, yr = TomekLinks().fit_resample(x, y)
        # Minority point 0 survives; its majority partner 1 is dropped.
        assert 0.0 in xr.ravel()
        assert 0.4 not in xr.ravel()

    def test_both_strategy_removes_pair(self):
        x = np.array([[0.0], [0.4], [5.0], [5.5], [6.0]])
        y = np.array([1, 0, 0, 0, 0])
        xr, yr = TomekLinks(strategy="both").fit_resample(x, y)
        assert len(xr) == 3

    def test_no_links_noop(self, rng):
        x = np.concatenate([rng.normal(0, 0.1, (10, 2)), rng.normal(9, 0.1, (10, 2))])
        y = np.array([0] * 10 + [1] * 10)
        xr, yr = TomekLinks().fit_resample(x, y)
        assert len(xr) == 20

    def test_invalid_strategy(self):
        with pytest.raises(ValueError):
            TomekLinks(strategy="all")


class TestENN:
    def test_removes_misclassified_majority(self, rng):
        majority = rng.normal(0.0, 0.3, size=(30, 2))
        intruder = np.array([[5.0, 5.0]])  # majority label, minority zone
        minority = rng.normal([5.0, 5.0], 0.3, size=(10, 2))
        x = np.concatenate([majority, intruder, minority])
        y = np.array([0] * 31 + [1] * 10)
        xr, yr = EditedNearestNeighbors(k_neighbors=3).fit_resample(x, y)
        # The intruder should be gone; clean majority survives.
        assert (yr == 0).sum() == 30

    def test_protects_minority_by_default(self, rng):
        majority = rng.normal(0.0, 0.5, size=(40, 2))
        # A minority point deep inside the majority: misclassified by
        # k-NN vote but protected.
        minority = np.array([[0.0, 0.0], [8.0, 8.0]])
        x = np.concatenate([majority, minority])
        y = np.array([0] * 40 + [1, 1])
        xr, yr = EditedNearestNeighbors(k_neighbors=3).fit_resample(x, y)
        assert (yr == 1).sum() == 2

    def test_unprotected_minority_can_be_removed(self, rng):
        majority = rng.normal(0.0, 0.5, size=(40, 2))
        minority = np.array([[0.0, 0.0], [8.0, 8.0]])
        x = np.concatenate([majority, minority])
        y = np.array([0] * 40 + [1, 1])
        xr, yr = EditedNearestNeighbors(
            k_neighbors=3, protect_minority=False
        ).fit_resample(x, y)
        assert (yr == 1).sum() < 2

    def test_tiny_dataset_noop(self, rng):
        x = rng.normal(size=(3, 2))
        y = np.array([0, 1, 0])
        xr, yr = EditedNearestNeighbors(k_neighbors=5).fit_resample(x, y)
        assert len(xr) == 3

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            EditedNearestNeighbors(k_neighbors=0)


class TestRegistryIntegration:
    @pytest.mark.parametrize("name", ["rbo", "ccr", "swim"])
    def test_buildable_and_balancing(self, name, overlapping):
        from repro.experiments import build_sampler

        x, y = overlapping
        sampler = build_sampler(name, random_state=0)
        xr, yr = sampler.fit_resample(x, y)
        counts = np.bincount(yr)
        np.testing.assert_array_equal(counts, [60, 60])
