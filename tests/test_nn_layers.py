"""Unit tests for nn layers, module mechanics, and initializers."""

import numpy as np
import pytest

from repro.nn import (
    BatchNorm1d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    GlobalAvgPool2d,
    Identity,
    Linear,
    Module,
    Parameter,
    ReLU,
    Sequential,
    init,
)
from repro.tensor import Tensor, check_gradients, using_default_dtype


@pytest.fixture
def rng():
    return np.random.default_rng(3)


class TestModuleMechanics:
    def test_parameter_registration(self, rng):
        layer = Linear(4, 2, rng=rng)
        names = [n for n, _ in layer.named_parameters()]
        assert names == ["weight", "bias"]

    def test_nested_module_discovery(self, rng):
        class Net(Module):
            def __init__(self):
                super().__init__()
                self.fc1 = Linear(4, 8, rng=rng)
                self.fc2 = Linear(8, 2, rng=rng)

            def forward(self, x):
                return self.fc2(self.fc1(x).relu())

        net = Net()
        names = [n for n, _ in net.named_parameters()]
        assert "fc1.weight" in names and "fc2.bias" in names
        assert net.num_parameters() == 4 * 8 + 8 + 8 * 2 + 2

    def test_train_eval_propagates(self, rng):
        net = Sequential(Linear(2, 2, rng=rng), BatchNorm1d(2))
        net.eval()
        assert all(not m.training for m in net.modules())
        net.train()
        assert all(m.training for m in net.modules())

    def test_zero_grad_clears_all(self, rng):
        net = Linear(3, 2, rng=rng)
        out = net(Tensor(rng.normal(size=(4, 3))))
        out.sum().backward()
        assert net.weight.grad is not None
        net.zero_grad()
        assert net.weight.grad is None

    def test_state_dict_roundtrip(self, rng):
        a = Sequential(Linear(3, 4, rng=rng), BatchNorm1d(4))
        b = Sequential(Linear(3, 4, rng=np.random.default_rng(99)), BatchNorm1d(4))
        a[1].running_mean[...] = 5.0
        state = a.state_dict()
        b.load_state_dict(state)
        np.testing.assert_allclose(b[0].weight.data, a[0].weight.data)
        np.testing.assert_allclose(b[1].running_mean, 5.0)

    def test_load_state_dict_shape_mismatch_raises(self, rng):
        a = Linear(3, 4, rng=rng)
        b = Linear(3, 5, rng=rng)
        with pytest.raises(ValueError):
            b.load_state_dict(a.state_dict())

    def test_load_state_dict_unknown_param_raises(self, rng):
        a = Linear(3, 4, rng=rng)
        with pytest.raises(KeyError):
            a.load_state_dict({"param:nope": np.zeros(2)})

    def test_sequential_indexing_iteration(self, rng):
        net = Sequential(Linear(2, 3, rng=rng), ReLU(), Linear(3, 1, rng=rng))
        assert len(net) == 3
        assert isinstance(net[1], ReLU)
        assert len(list(iter(net))) == 3

    def test_repr_contains_children(self, rng):
        net = Sequential(Linear(2, 3, rng=rng), ReLU())
        text = repr(net)
        assert "Linear" in text and "ReLU" in text


class TestLinear:
    def test_forward_shape(self, rng):
        layer = Linear(5, 3, rng=rng)
        out = layer(Tensor(rng.normal(size=(7, 5))))
        assert out.shape == (7, 3)

    def test_no_bias(self, rng):
        layer = Linear(5, 3, bias=False, rng=rng)
        assert layer.bias is None
        out = layer(Tensor(np.zeros((2, 5))))
        np.testing.assert_allclose(out.data, 0.0)

    def test_gradcheck(self, rng):
        # float64 default: finite differences drown in float32 rounding.
        with using_default_dtype(np.float64):
            layer = Linear(3, 2, rng=rng)
            x = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
            check_gradients(
                lambda x, w, b: ((x @ w.transpose() + b) ** 2).sum(),
                [x, layer.weight, layer.bias],
            )

    def test_gradcheck_fused_linear_relu(self, rng):
        from repro.nn import LinearReLU

        with using_default_dtype(np.float64):
            layer = LinearReLU(3, 2, rng=rng)
            x = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
            check_gradients(
                lambda x, w, b: (layer(x) ** 2).sum(),
                [x, layer.weight, layer.bias],
            )


class TestConvLayer:
    def test_forward_shape(self, rng):
        layer = Conv2d(3, 8, 3, stride=2, padding=1, rng=rng)
        out = layer(Tensor(rng.normal(size=(2, 3, 8, 8))))
        assert out.shape == (2, 8, 4, 4)

    def test_bias_optional(self, rng):
        layer = Conv2d(1, 1, 3, bias=False, rng=rng)
        assert layer.bias is None

    def test_training_reduces_loss(self, rng):
        from repro.optim import SGD

        layer = Conv2d(1, 2, 3, padding=1, rng=rng)
        x = Tensor(rng.normal(size=(4, 1, 5, 5)))
        target = Tensor(rng.normal(size=(4, 2, 5, 5)))
        opt = SGD(layer.parameters(), lr=0.01)
        losses = []
        for _ in range(20):
            opt.zero_grad()
            loss = ((layer(x) - target) ** 2).mean()
            loss.backward()
            opt.step()
            losses.append(float(loss.data))
        assert losses[-1] < losses[0] * 0.9


class TestBatchNorm:
    def test_train_output_standardized(self, rng):
        bn = BatchNorm2d(3)
        x = Tensor(rng.normal(2.0, 3.0, size=(8, 3, 4, 4)))
        out = bn(x).data
        np.testing.assert_allclose(out.mean(axis=(0, 2, 3)), 0.0, atol=1e-7)
        np.testing.assert_allclose(out.std(axis=(0, 2, 3)), 1.0, atol=1e-2)

    def test_running_stats_updated(self, rng):
        bn = BatchNorm2d(2, momentum=1.0)  # copy batch stats directly
        x = Tensor(rng.normal(5.0, 1.0, size=(16, 2, 3, 3)))
        bn(x)
        np.testing.assert_allclose(
            bn.running_mean, x.data.mean(axis=(0, 2, 3)), atol=1e-8
        )

    def test_eval_uses_running_stats(self, rng):
        bn = BatchNorm2d(2)
        x = Tensor(rng.normal(size=(8, 2, 3, 3)))
        bn(x)
        bn.eval()
        x2 = Tensor(rng.normal(10.0, 1.0, size=(4, 2, 3, 3)))
        out = bn(x2).data
        # With running stats near N(0,1), an N(10,1) input stays ~10.
        assert out.mean() > 5.0

    def test_eval_is_deterministic(self, rng):
        bn = BatchNorm1d(4)
        bn(Tensor(rng.normal(size=(32, 4))))
        bn.eval()
        x = Tensor(rng.normal(size=(5, 4)))
        np.testing.assert_array_equal(bn(x).data, bn(x).data)

    def test_gradcheck_through_batch_stats(self, rng):
        with using_default_dtype(np.float64):
            bn = BatchNorm1d(3)
            x = Tensor(rng.normal(size=(6, 3)), requires_grad=True)

            def fn(x, w, b):
                bn.weight, bn.bias = w, b
                return (bn(x) ** 2).sum()

            check_gradients(fn, [x, bn.weight, bn.bias])

    def test_wrong_dims_raise(self, rng):
        with pytest.raises(ValueError):
            BatchNorm2d(2)(Tensor(np.zeros((2, 2))))
        with pytest.raises(ValueError):
            BatchNorm1d(2)(Tensor(np.zeros((2, 2, 2, 2))))


class TestMiscLayers:
    def test_flatten(self, rng):
        out = Flatten()(Tensor(np.zeros((2, 3, 4))))
        assert out.shape == (2, 12)

    def test_identity(self, rng):
        x = Tensor(rng.normal(size=(2, 2)))
        assert Identity()(x) is x

    def test_global_avg_pool_layer(self, rng):
        out = GlobalAvgPool2d()(Tensor(np.ones((2, 3, 4, 4))))
        np.testing.assert_allclose(out.data, 1.0)
        assert out.shape == (2, 3)

    def test_dropout_train_vs_eval(self, rng):
        drop = Dropout(0.5, rng=rng)
        x = Tensor(np.ones((100, 10)))
        out_train = drop(x).data
        assert (out_train == 0).any()
        # Inverted dropout preserves expectation.
        assert out_train.mean() == pytest.approx(1.0, abs=0.15)
        drop.eval()
        np.testing.assert_array_equal(drop(x).data, x.data)

    def test_dropout_invalid_p(self):
        from repro.tensor import dropout

        with pytest.raises(ValueError):
            dropout(Tensor(np.ones(3)), p=1.0)


class TestInit:
    def test_kaiming_normal_std(self, rng):
        w = init.kaiming_normal((256, 128), rng)
        expected = np.sqrt(2.0 / 128)
        assert w.std() == pytest.approx(expected, rel=0.1)

    def test_kaiming_conv_fan(self, rng):
        w = init.kaiming_normal((64, 32, 3, 3), rng)
        expected = np.sqrt(2.0 / (32 * 9))
        assert w.std() == pytest.approx(expected, rel=0.1)

    def test_xavier_uniform_bound(self, rng):
        w = init.xavier_uniform((100, 50), rng)
        bound = np.sqrt(6.0 / 150)
        assert np.abs(w).max() <= bound + 1e-12

    def test_unsupported_shape_raises(self, rng):
        with pytest.raises(ValueError):
            init.kaiming_normal((3,), rng)
