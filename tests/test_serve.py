"""Tests for repro.serve: protocol framing, the write-ahead journal,
queue recovery, admission control, routing determinism, and the daemon
itself (both handler-level and end-to-end over a real Unix socket)."""

import json
import os
import threading

import numpy as np
import pytest

from repro.resilience import FaultPlan, SimulatedKill, inject_faults
from repro.serve import (
    AdmissionController,
    JobQueue,
    Journal,
    LoadShedded,
    ProtocolError,
    ReproService,
    Router,
    ServeClient,
    ServeError,
    default_router,
    job_seed,
    read_journal,
    read_message,
    recover,
    retry_jitter,
    segment_paths,
    write_message,
)


# ----------------------------------------------------------------------
# Protocol framing (no real sockets needed: a buffer with the API)
# ----------------------------------------------------------------------
class FakeSock:
    """In-memory stand-in exposing the recv/sendall surface the framing
    helpers use."""

    def __init__(self, data=b""):
        self.buffer = bytearray(data)
        self.sent = bytearray()

    def recv(self, size):
        chunk = bytes(self.buffer[:size])
        del self.buffer[:size]
        return chunk

    def sendall(self, data):
        self.sent.extend(data)


class TestProtocol:
    def test_roundtrip(self):
        sock = FakeSock()
        write_message(sock, {"verb": "status", "n": 3})
        echo = FakeSock(bytes(sock.sent))
        assert read_message(echo) == {"verb": "status", "n": 3}

    def test_clean_eof_returns_none(self):
        assert read_message(FakeSock(b"")) is None

    def test_torn_header_raises(self):
        sock = FakeSock()
        write_message(sock, {"x": 1})
        with pytest.raises(ProtocolError):
            read_message(FakeSock(bytes(sock.sent[:2])))

    def test_torn_payload_raises(self):
        sock = FakeSock()
        write_message(sock, {"x": "hello world"})
        with pytest.raises(ProtocolError):
            read_message(FakeSock(bytes(sock.sent[:-3])))

    def test_undecodable_payload_raises(self):
        import struct

        payload = b"not json at all"
        frame = struct.pack(">I", len(payload)) + payload
        with pytest.raises(ProtocolError):
            read_message(FakeSock(frame))

    def test_oversized_length_prefix_rejected(self):
        import struct

        with pytest.raises(ProtocolError):
            read_message(FakeSock(struct.pack(">I", (64 << 20) + 1)))

    def test_settlement_statuses_are_part_of_the_contract(self):
        # client.wait settles on "done"/"failed" from the result verb;
        # the wire contract must list them.
        from repro.serve.protocol import STATUSES

        for status in ("ok", "retry_after", "pending", "done", "failed",
                       "not_found", "error"):
            assert status in STATUSES


# ----------------------------------------------------------------------
# Write-ahead journal
# ----------------------------------------------------------------------
class TestJournal:
    def test_append_and_replay_roundtrip(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with Journal(path) as journal:
            journal.append("accepted", fsync=True, job_id="j1", kind="echo")
            journal.append("done", job_id="j1", result={"ok": 1})
            journal.append("stop", fsync=True)
        stats = read_journal(path)
        assert [r["type"] for r in stats.records] == [
            "accepted", "done", "stop",
        ]
        assert stats.clean_stop and not stats.torn_tail
        assert stats.corrupt == 0

    def test_missing_file_replays_empty(self, tmp_path):
        stats = read_journal(tmp_path / "absent.jsonl")
        assert stats.records == [] and not stats.clean_stop

    def test_torn_tail_is_skipped_silently(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with Journal(path) as journal:
            journal.append("accepted", fsync=True, job_id="j1", kind="echo")
        torn = path.read_text() + '{"sha256": "feed", "body": {"type": "acc'
        path.write_text(torn)
        stats = read_journal(path)
        assert [r["job_id"] for r in stats.records] == ["j1"]
        assert stats.torn_tail
        assert stats.corrupt == 0  # a torn tail is normal, not damage

    def test_corrupt_middle_line_counted_but_rest_recovers(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with Journal(path) as journal:
            journal.append("accepted", fsync=True, job_id="j1", kind="echo")
            journal.append("accepted", fsync=True, job_id="j2", kind="echo")
        lines = path.read_text().splitlines()
        lines[0] = lines[0][: len(lines[0]) // 2]  # bit-rot the first record
        path.write_text("\n".join(lines) + "\n")
        stats = read_journal(path)
        assert [r["job_id"] for r in stats.records] == ["j2"]
        assert stats.corrupt == 1 and not stats.torn_tail

    def test_checksum_mismatch_is_rejected(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        body = {"type": "accepted", "job_id": "evil"}
        path.write_text(
            json.dumps({"sha256": "0" * 64, "body": body}) + "\n"
        )
        stats = read_journal(path)
        assert stats.records == []

    def test_torn_tail_repaired_before_next_append(self, tmp_path):
        # A crash mid-append leaves a partial final line.  Reopening for
        # append must truncate it first: otherwise the recovered
        # daemon's next record — possibly a fsynced, ACKed acceptance —
        # fuses with the garbage and is lost on the *second* replay.
        path = tmp_path / "journal.jsonl"
        with Journal(path) as journal:
            journal.append("accepted", fsync=True, job_id="j1", kind="echo")
        with open(path, "a", encoding="utf-8") as handle:  # repro: noqa[RES001] deliberately tearing the journal tail: this test simulates the crash shape
            handle.write('{"sha256": "feed", "body": {"type": "acc')
        assert read_journal(path).torn_tail
        with Journal(path) as journal:
            journal.append("accepted", fsync=True, job_id="j2", kind="echo")
        stats = read_journal(path)
        assert [r["job_id"] for r in stats.records] == ["j1", "j2"]
        assert not stats.torn_tail
        assert stats.corrupt == 0

    def test_repair_of_torn_first_line_empties_the_file(self, tmp_path):
        # Torn tail with no newline anywhere: the whole file is the
        # partial record; repair truncates to empty, append starts fresh.
        path = tmp_path / "journal.jsonl"
        path.write_text('{"sha256": "feed", "body"')
        with Journal(path) as journal:
            journal.append("accepted", fsync=True, job_id="j1", kind="echo")
        stats = read_journal(path)
        assert [r["job_id"] for r in stats.records] == ["j1"]
        assert not stats.torn_tail

    def test_corrupt_fault_writes_torn_record(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        plan = FaultPlan()
        plan.inject("serve.journal", action="corrupt",
                    when={"record": "done"})
        with inject_faults(plan), Journal(path) as journal:
            journal.append("accepted", fsync=True, job_id="j1", kind="echo")
            journal.append("done", job_id="j1", result=1)
        stats = read_journal(path)
        assert [r["type"] for r in stats.records] == ["accepted"]
        assert stats.torn_tail


# ----------------------------------------------------------------------
# Journal segments + compaction
# ----------------------------------------------------------------------
class TestJournalSegments:
    def test_single_file_is_one_segment(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with Journal(path) as journal:
            journal.append("accepted", fsync=True, job_id="j1", kind="echo")
        assert segment_paths(path) == [str(path)]
        stats = read_journal(path)
        assert stats.segments == 1
        assert stats.bytes == os.path.getsize(path)

    def test_compact_replaces_segments_with_one_checkpoint(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = Journal(path)
        journal.append("accepted", fsync=True, job_id="j1", kind="echo")
        journal.append("done", job_id="j1", result=1)
        before = os.path.getsize(path)
        journal.compact([
            {"type": "checkpoint", "seq": 1,
             "outcomes": {"j1": {"status": "done", "result": 1}},
             "accepted": {"j1": {"job_id": "j1", "kind": "echo"}}},
        ])
        segments = segment_paths(path)
        assert segments == [str(path) + ".00000001"]
        assert not os.path.exists(path)  # segment 0 unlinked
        stats = read_journal(path)
        assert [r["type"] for r in stats.records] == ["checkpoint"]
        assert stats.segments == 1 and stats.bytes < before * 2
        journal.close()

    def test_appends_after_compaction_land_in_new_segment(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = Journal(path)
        journal.append("accepted", fsync=True, job_id="j1", kind="echo")
        journal.compact([{"type": "checkpoint", "seq": 1, "outcomes": {},
                          "accepted": {}},
                         {"type": "accepted", "job_id": "j1", "kind": "echo"}])
        journal.append("done", job_id="j1", result=1)
        journal.close()
        stats = read_journal(path)
        assert [r["type"] for r in stats.records] == [
            "checkpoint", "accepted", "done",
        ]

    def test_second_compaction_increments_the_segment_index(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = Journal(path)
        journal.append("accepted", fsync=True, job_id="j1", kind="echo")
        body = {"type": "checkpoint", "seq": 1, "outcomes": {},
                "accepted": {}}
        journal.compact([body])
        journal.compact([body])
        journal.close()
        assert segment_paths(path) == [str(path) + ".00000002"]
        # A reopened Journal appends to the highest segment, not base.
        with Journal(path) as reopened:
            reopened.append("accepted", fsync=True, job_id="j2", kind="echo")
        assert segment_paths(path) == [str(path) + ".00000002"]
        assert [r["type"] for r in read_journal(path).records] == [
            "checkpoint", "accepted",
        ]

    def test_stray_tmp_files_are_not_segments(self, tmp_path):
        # atomic_write temp files (journal.jsonl.XXXX.tmp) from a crash
        # mid-compaction must never be replayed as segments.
        path = tmp_path / "journal.jsonl"
        with Journal(path) as journal:
            journal.append("accepted", fsync=True, job_id="j1", kind="echo")
        (tmp_path / "journal.jsonl.abc123.tmp").write_text("garbage")
        (tmp_path / "journal.jsonl.orphan").write_text("garbage")
        assert segment_paths(path) == [str(path)]

    def test_checkpoint_supersedes_earlier_records_in_replay(self, tmp_path):
        # Crash-before-unlink shape: old segment 0 (with a stop marker)
        # still on disk next to the new checkpoint segment.  Replay must
        # reset at the checkpoint — including the clean_stop flag.
        path = tmp_path / "journal.jsonl"
        with Journal(path) as journal:
            journal.append("accepted", fsync=True, job_id="old", kind="echo")
            journal.append("stop", fsync=True)
        checkpoint = Journal(str(path) + ".00000001")
        checkpoint.append("checkpoint", seq=5, outcomes={}, accepted={})
        checkpoint.append("accepted", job_id="new", kind="echo")
        checkpoint.close()
        stats = read_journal(path)
        assert [r.get("job_id") for r in stats.records] == [None, "new"]
        assert not stats.clean_stop
        assert stats.segments == 2

    def test_compact_kill_fault_fires_at_each_phase(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        for phase in ("begin", "written", "switched", "unlink"):
            journal = Journal(path)
            plan = FaultPlan()
            plan.inject("serve.compact", action="kill",
                        when={"phase": phase})
            with inject_faults(plan):
                with pytest.raises(SimulatedKill):
                    journal.compact([{"type": "checkpoint", "seq": 1,
                                      "outcomes": {}, "accepted": {}}])
            try:
                journal.close()
            except OSError:  # repro: noqa[RES002] handle may already be mid-switch after the simulated kill
                pass
            # Whatever the crash left, replay still resolves a state.
            read_journal(path)


class TestQueueCompaction:
    def test_compaction_preserves_recovered_state(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        queue = JobQueue(Journal(path))
        for i in range(6):
            queue.accept(_job("j%d" % i, payload={"n": i}))
        taken = queue.take(4)
        for job in taken[:3]:
            queue.settle_done(job["job_id"], {"ok": job["job_id"]})
        queue.settle_failed(taken[3]["job_id"], "boom", "err")
        reference_outcomes = dict(queue.outcomes)
        queue.compact()
        queue.accept(_job("j9"))
        queue.close()
        recovered, stats = recover(path)
        assert recovered.outcomes == reference_outcomes
        # Live jobs — the untaken pending ones plus the new accept —
        # replay in acceptance order; settled ones never re-pend.
        assert list(recovered.pending) == ["j4", "j5", "j9"]
        assert stats.segments == 1
        recovered.close()

    def test_taken_jobs_survive_compaction_as_pending(self, tmp_path):
        # A job handed to the persistent pool but unsettled at compaction
        # time is still the daemon's promise: it must replay.
        path = tmp_path / "journal.jsonl"
        queue = JobQueue(Journal(path))
        queue.accept(_job("j1"))
        queue.accept(_job("j2"))
        queue.take(1)  # j1 now in flight
        queue.compact()
        queue.close()
        recovered, _ = recover(path)
        assert list(recovered.pending) == ["j1", "j2"]
        recovered.close()

    def test_seq_and_specs_survive_compaction(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        queue = JobQueue(Journal(path))
        queue.accept(_job("job-00000001", payload={"x": 1}))
        queue.settle_done("job-00000001", 1)
        queue.compact()
        queue.close()
        recovered, _ = recover(path)
        # Generated ids keep counting past the checkpoint, and the spec
        # of a settled job still answers idempotent resubmits.
        assert recovered._seq == 1
        assert recovered.accepted["job-00000001"]["payload"] == {"x": 1}
        recovered.close()

    def test_repeated_compaction_keeps_journal_bounded(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        queue = JobQueue(Journal(path))
        sizes = []
        for round_index in range(5):
            for i in range(10):
                job_id = "r%d-j%d" % (round_index, i)
                queue.accept(_job(job_id))
                queue.settle_done(job_id, {"ok": job_id})
            queue.compact()
            sizes.append(queue.journal.size_bytes())
        queue.close()
        # Growth is O(settled outcomes), not O(journal history): each
        # round's checkpoint replaces — not stacks on — the previous one.
        assert len(queue.journal.segments()) == 1
        assert sizes[-1] < sizes[0] * 6


# ----------------------------------------------------------------------
# Queue + recovery (exactly-once)
# ----------------------------------------------------------------------
def _job(job_id, kind="echo", payload=None):
    return {"job_id": job_id, "kind": kind, "client": "t",
            "payload": payload or {}}


class TestQueueRecovery:
    def test_accept_then_recover_is_pending_again(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        queue = JobQueue(Journal(path))
        queue.accept(_job("j1"))
        queue.accept(_job("j2"))
        queue.close()  # crash: nothing settled
        recovered, stats = recover(path)
        assert list(recovered.pending) == ["j1", "j2"]
        assert recovered.outcomes == {}
        recovered.close()

    def test_settled_jobs_never_replay_as_pending(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        queue = JobQueue(Journal(path))
        queue.accept(_job("j1"))
        queue.accept(_job("j2"))
        queue.settle_done("j1", {"answer": 42})
        queue.settle_failed("j2", "RuntimeError", "boom")
        queue.close()
        recovered, _ = recover(path)
        assert recovered.pending == {}
        assert recovered.outcome("j1") == {
            "status": "done", "result": {"answer": 42},
        }
        assert recovered.outcome("j2")["reason"] == "RuntimeError"
        recovered.close()

    def test_duplicate_job_id_rejected(self, tmp_path):
        queue = JobQueue(Journal(tmp_path / "journal.jsonl"))
        queue.accept(_job("j1"))
        with pytest.raises(ValueError):
            queue.accept(_job("j1"))
        queue.settle_done("j1", 1)
        with pytest.raises(ValueError):
            queue.accept(_job("j1"))
        queue.close()

    def test_taken_job_still_counts_as_accepted_for_duplicates(self, tmp_path):
        queue = JobQueue(Journal(tmp_path / "journal.jsonl"))
        queue.accept(_job("j1"))
        queue.take(1)  # in a dispatch batch: neither pending nor settled
        with pytest.raises(ValueError):
            queue.accept(_job("j1"))
        queue.close()

    def test_accepted_specs_survive_recovery(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        queue = JobQueue(Journal(path))
        queue.accept(_job("j1", payload={"x": 1}))
        queue.accept(_job("j2"))
        queue.settle_done("j2", 1)
        queue.close()
        recovered, _ = recover(path)
        # Both the pending and the settled job keep their specs, so a
        # lost-ACK retry can be recognized across a restart.
        assert recovered.accepted["j1"]["payload"] == {"x": 1}
        assert "j2" in recovered.accepted
        recovered.close()

    def test_take_preserves_acceptance_order(self, tmp_path):
        queue = JobQueue(Journal(tmp_path / "journal.jsonl"))
        for name in ("a", "b", "c"):
            queue.accept(_job(name))
        batch = queue.take(2)
        assert [j["job_id"] for j in batch] == ["a", "b"]
        queue.requeue(batch[0])
        assert next(iter(queue.pending)) == "a"
        queue.close()

    def test_seq_survives_recovery_for_unique_generated_ids(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        queue = JobQueue(Journal(path))
        queue.accept(_job("job-00000001"))
        queue.close()
        recovered, _ = recover(path)
        assert recovered._seq == 1  # the next generated id is job-00000002
        recovered.close()

    def test_clean_stop_marker_recovered(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        queue = JobQueue(Journal(path))
        queue.accept(_job("j1"))
        queue.settle_done("j1", 1)
        queue.mark_stop()
        queue.close()
        _, stats = recover(path)
        assert stats.clean_stop


# ----------------------------------------------------------------------
# Admission control
# ----------------------------------------------------------------------
class TestAdmission:
    def test_accepts_under_capacity(self):
        controller = AdmissionController(max_depth=4)
        assert controller.admit("c", depth=3) is None

    def test_sheds_at_depth_with_structured_retry(self):
        controller = AdmissionController(max_depth=2)
        shed = controller.admit("c", depth=2)
        assert shed is not None and shed.reason == "queue_full"
        assert shed.retry_after >= 0.05

    def test_retry_after_tracks_observed_service_time(self):
        controller = AdmissionController(max_depth=1)
        for _ in range(4):
            controller.observe_service(2.0)
        shed = controller.admit("c", depth=3)
        # 3 over capacity by 3 - 1 + 1 = 3 jobs at ~2s each.
        assert shed.retry_after == pytest.approx(6.0)

    def test_per_client_cap(self):
        controller = AdmissionController(max_depth=64, per_client_limit=1)
        assert controller.admit("a", depth=0) is None
        controller.register("a")
        shed = controller.admit("a", depth=1)
        assert shed is not None and shed.reason == "client_limit"
        assert controller.admit("b", depth=1) is None  # other clients fine
        controller.release("a")
        assert controller.admit("a", depth=1) is None

    def test_stopping_sheds_everything(self):
        controller = AdmissionController(max_depth=64)
        shed = controller.admit("c", depth=0, stopping=True)
        assert shed is not None and shed.reason == "stopping"

    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionController(max_depth=0)
        with pytest.raises(ValueError):
            AdmissionController(per_client_limit=0)


# ----------------------------------------------------------------------
# Router determinism
# ----------------------------------------------------------------------
class TestRouter:
    def test_job_seed_is_stable_and_id_dependent(self):
        assert job_seed("j1") == job_seed("j1")
        assert job_seed("j1") != job_seed("j2")

    def test_echo_carries_seed(self):
        result = default_router().dispatch(_job("j1", payload={"k": 1}))
        assert result == {"echo": {"k": 1}, "seed": job_seed("j1")}

    def test_unknown_kind_is_lookup_error(self):
        with pytest.raises(LookupError):
            default_router().dispatch(_job("j1", kind="nope"))

    def test_fail_handler_raises(self):
        with pytest.raises(RuntimeError, match="boom"):
            default_router().dispatch(
                _job("j1", kind="fail", payload={"message": "boom"})
            )

    def test_resample_is_deterministic_in_job_id(self, blob_data):
        x, y = blob_data
        payload = {"x": x.tolist(), "y": y.tolist(), "sampler": "eos"}
        router = default_router()
        first = router.dispatch(_job("jA", kind="resample", payload=payload))
        again = router.dispatch(_job("jA", kind="resample", payload=payload))
        other = router.dispatch(_job("jB", kind="resample", payload=payload))
        assert first == again  # same id -> byte-identical replay
        assert first["n_synthetic"] > 0
        counts = first["class_counts"]
        assert counts[0] == counts[1] == counts[2]  # balanced output
        assert other["y"] == first["y"]  # same plan, different draws
        assert other["x"] != first["x"]


# ----------------------------------------------------------------------
# Service: handler-level (no socket, no loop)
# ----------------------------------------------------------------------
def _service(tmp_path, **kwargs):
    return ReproService(
        tmp_path / "repro.sock", tmp_path / "journal.jsonl", **kwargs
    )


class TestServiceHandlers:
    def test_submit_accepts_and_journals(self, tmp_path):
        service = _service(tmp_path)
        response = service._handle_submit(
            {"kind": "echo", "client": "a", "payload": {"x": 1}}
        )
        assert response["status"] == "ok"
        job_id = response["job_id"]
        stats = read_journal(service.journal_path)
        assert [r["type"] for r in stats.records] == ["accepted"]
        assert stats.records[0]["job_id"] == job_id
        service.queue.close()

    def test_submit_sheds_at_depth_before_journaling(self, tmp_path):
        service = _service(tmp_path, max_depth=1)
        assert service._handle_submit(
            {"kind": "echo", "client": "a"}
        )["status"] == "ok"
        shed = service._handle_submit({"kind": "echo", "client": "a"})
        assert shed["status"] == "retry_after"
        assert shed["reason"] == "queue_full"
        # The shed job was never promised: exactly one journal record.
        assert len(read_journal(service.journal_path).records) == 1
        service.queue.close()

    def test_unknown_kind_rejected_without_journaling(self, tmp_path):
        service = _service(tmp_path)
        response = service._handle_submit({"kind": "nope", "client": "a"})
        assert response["status"] == "error"
        assert read_journal(service.journal_path).records == []
        service.queue.close()

    def test_dispatch_settles_done_and_failed(self, tmp_path):
        service = _service(tmp_path, batch=2)
        ok = service._handle_submit({"kind": "echo", "client": "a"})
        bad = service._handle_submit(
            {"kind": "fail", "client": "a", "payload": {"message": "kaput"}}
        )
        assert service._dispatch_some() == 2
        done = service.queue.outcome(ok["job_id"])
        failed = service.queue.outcome(bad["job_id"])
        assert done["status"] == "done"
        assert done["result"]["seed"] == job_seed(ok["job_id"])
        assert failed["status"] == "failed"
        assert failed["reason"] == "RuntimeError"
        assert service.counters["completed"] == 1
        assert service.counters["failed"] == 1
        service.queue.close()

    def test_breaker_opens_and_short_circuits_job_family(self, tmp_path):
        service = _service(tmp_path, breaker_threshold=2)
        for _ in range(2):
            service._handle_submit(
                {"kind": "fail", "client": "a",
                 "payload": {"message": "same failure"}}
            )
            service._dispatch_some()
        assert service.breaker.open_breakers()
        response = service._handle_submit(
            {"kind": "fail", "client": "a",
             "payload": {"message": "same failure"}}
        )
        service._dispatch_some()
        outcome = service.queue.outcome(response["job_id"])
        assert outcome["status"] == "failed"
        assert outcome["reason"].startswith("circuit_open:")
        # Other kinds are unaffected by the fail family's breaker.
        ok = service._handle_submit({"kind": "echo", "client": "a"})
        service._dispatch_some()
        assert service.queue.outcome(ok["job_id"])["status"] == "done"
        service.queue.close()

    def test_resubmit_of_held_job_id_is_idempotent(self, tmp_path):
        # The lost-ACK shape: the daemon journaled + holds the job, the
        # client never saw the response and retries the same id.
        service = _service(tmp_path)
        first = service._handle_submit(
            {"kind": "echo", "client": "a", "payload": {"x": 1},
             "job_id": "j-ack"}
        )
        assert first["status"] == "ok"
        retry = service._handle_submit(
            {"kind": "echo", "client": "a", "payload": {"x": 1},
             "job_id": "j-ack"}
        )
        assert retry["status"] == "ok"
        assert retry["job_id"] == "j-ack"
        assert retry["duplicate"] is True
        # Still idempotent after settlement.
        service._dispatch_some()
        settled = service._handle_submit(
            {"kind": "echo", "client": "a", "payload": {"x": 1},
             "job_id": "j-ack"}
        )
        assert settled["status"] == "ok"
        # Exactly one acceptance was ever journaled or counted.
        accepted = [r for r in read_journal(service.journal_path).records
                    if r["type"] == "accepted"]
        assert len(accepted) == 1
        assert service.counters["accepted"] == 1
        assert service.admission.in_flight == {}
        # A reused id with different work is a genuine conflict.
        conflict = service._handle_submit(
            {"kind": "echo", "client": "a", "payload": {"x": 2},
             "job_id": "j-ack"}
        )
        assert conflict["status"] == "error"
        assert "different kind/payload" in conflict["message"]
        service.queue.close()

    def test_peer_reset_and_broken_pipe_do_not_crash(self, tmp_path):
        # A client that resets the connection or closes before reading
        # the response (routine when it times out during a slow batch)
        # must end the connection, not the daemon.
        service = _service(tmp_path)

        class ResetConn:
            def settimeout(self, timeout):
                pass

            def recv(self, size):
                raise ConnectionResetError(104, "connection reset by peer")

            def sendall(self, data):
                raise BrokenPipeError(32, "broken pipe")

            def close(self):
                pass

        service._serve_one_connection(ResetConn())  # must not raise

        class ImpatientConn(FakeSock):
            """Sends a full request, closes before reading the answer."""

            def settimeout(self, timeout):
                pass

            def sendall(self, data):
                raise BrokenPipeError(32, "broken pipe")

            def close(self):
                pass

        request = FakeSock()
        write_message(request, {"verb": "status"})
        service._serve_one_connection(ImpatientConn(bytes(request.sent)))
        service.queue.close()

    def test_status_snapshot_shape(self, tmp_path):
        service = _service(tmp_path)
        payload = service.status()
        assert payload["status"] == "ok"
        assert payload["pid"] == os.getpid()
        assert payload["queue_depth"] == 0
        assert payload["replay"]["clean_stop"] is False
        assert "echo" in payload["kinds"]
        service.queue.close()

    def test_crash_then_recover_reexecutes_exactly_once(self, tmp_path):
        calls = []
        router = Router()
        router.register(
            "count", lambda payload, seed: calls.append(seed) or {"seed": seed}
        )
        first = _service(tmp_path, router=router)
        accepted = first._handle_submit(
            {"kind": "count", "client": "a", "job_id": "j-keep"}
        )
        settled = first._handle_submit(
            {"kind": "count", "client": "a", "job_id": "j-done"}
        )
        # Settle only j-keep... dispatch runs both; emulate a crash that
        # lands between the two settlements instead: settle j-done alone.
        first.queue.take(2)
        first.queue.settle_done("j-done", {"seed": job_seed("j-done")})
        first.queue.close()  # SIGKILL: j-keep accepted but unsettled

        second = _service(tmp_path, router=router)
        assert second.counters["replayed"] == 1
        assert list(second.queue.pending) == ["j-keep"]
        assert second._dispatch_some() == 1
        # j-keep ran exactly once (now); j-done was served from the
        # journal and never re-executed.
        assert calls == [job_seed("j-keep")]
        assert second.queue.outcome("j-done")["result"] == {
            "seed": job_seed("j-done")
        }
        assert second.queue.outcome("j-keep")["status"] == "done"
        assert accepted["status"] == settled["status"] == "ok"
        second.queue.close()

    def test_accept_kill_fault_leaves_no_promise(self, tmp_path):
        service = _service(tmp_path)
        plan = FaultPlan()
        plan.inject("serve.accept", action="kill")
        with inject_faults(plan):
            with pytest.raises(SimulatedKill):
                service._handle_submit({"kind": "echo", "client": "a"})
        # Crashed before the journal write: nothing was accepted.
        assert read_journal(service.journal_path).records == []
        service.queue.close()


# ----------------------------------------------------------------------
# Health, degraded mode, compaction and persistent dispatch (handler-level)
# ----------------------------------------------------------------------
def _drain_service(service, expected, rounds=2000):
    """Drive _dispatch_some until ``expected`` jobs settled (or fail)."""
    for _ in range(rounds):
        if len(service.queue.outcomes) >= expected:
            return
        service._dispatch_some()
    raise AssertionError(
        "only %d/%d jobs settled" % (len(service.queue.outcomes), expected)
    )


def _close_service(service):
    if service._pool is not None:
        service._pool.close()
        service._pool = None
    service.queue.close()


class TestServiceHealth:
    def test_health_snapshot_shape(self, tmp_path):
        service = _service(tmp_path)
        payload = service.health()
        assert payload["status"] == "ok"
        assert payload["health"] == "ok"
        assert payload["queue_depth"] == 0 and payload["in_flight"] == 0
        assert payload["death_streak"] == 0
        assert payload["workers"] == {"mode": "fork-per-job", "count": 1}
        journal = payload["journal"]
        assert set(journal) == {"segments", "bytes", "corrupt_lines",
                                "compactions"}
        assert journal["segments"] == 1
        service.queue.close()

    def test_health_verb_routed(self, tmp_path):
        service = _service(tmp_path)
        assert service._handle_request({"verb": "health"})["health"] == "ok"
        service.queue.close()

    def test_status_carries_journal_stats_and_health(self, tmp_path):
        service = _service(tmp_path)
        payload = service.status()
        assert payload["health"] == "ok"
        assert payload["persistent"] is False
        stats = payload["journal_stats"]
        assert stats["segments"] == 1 and stats["compactions"] == 0
        assert stats["bytes"] == os.path.getsize(service.journal_path)
        service.queue.close()

    def test_draining_health_state(self, tmp_path):
        service = _service(tmp_path)
        service._handle_request({"verb": "stop"})
        assert service.health()["health"] == "draining"
        service.queue.close()

    def test_degraded_mode_sheds_to_floor_and_defers_compaction(
            self, tmp_path):
        service = _service(tmp_path, max_depth=8, compact_every=1)
        service._degraded = True
        # Floor = max_depth // 4 = 2: the third submit sheds.
        for i in range(2):
            assert service._handle_submit(
                {"kind": "echo", "client": "a"}
            )["status"] == "ok"
        shed = service._handle_submit({"kind": "echo", "client": "a"})
        assert shed["status"] == "retry_after"
        assert shed["reason"] == "degraded"
        # Settle work: past compact_every, but compaction is deferred.
        service.queue.take(2)
        for job_id in list(service.queue.taken):
            service.queue.settle_done(job_id, 1)
            service._settled_since_compact += 1
        assert service._maybe_compact() is False
        service._degraded = False
        assert service._maybe_compact() is True
        assert service.counters["compactions"] == 1
        service.queue.close()

    def test_death_streak_flips_degraded_and_success_clears_it(
            self, tmp_path):
        service = _service(tmp_path, degraded_threshold=2)

        class FakePool:
            deaths = 2

        service._supervise(FakePool())
        assert service._degraded and service.health()["health"] == "degraded"
        # A completed job resets the streak; the next sweep exits.
        service._handle_submit({"kind": "echo", "client": "a"})
        job = service.queue.take(1)[0]
        service._settle_outcome(job, {"ok": 1})
        service._supervise(FakePool())
        assert not service._degraded
        assert service.health()["health"] == "ok"
        service.queue.close()

    def test_auto_compaction_after_n_settlements(self, tmp_path):
        service = _service(tmp_path, compact_every=2)
        for _ in range(4):
            service._handle_submit({"kind": "echo", "client": "a"})
            service._dispatch_some()
            service._maybe_compact()
        assert service.counters["compactions"] == 2
        assert service.status()["journal_stats"]["segments"] == 1
        service.queue.close()


class TestServicePersistent:
    def test_persistent_dispatch_matches_fork_per_job(self, tmp_path):
        jobs = [("p-%d" % i, {"n": i}) for i in range(6)]
        outcomes = {}
        for mode, root in (("fork", tmp_path / "a"),
                           ("persistent", tmp_path / "b")):
            root.mkdir()
            service = _service(root, workers=2,
                               persistent=(mode == "persistent"))
            for job_id, payload in jobs:
                service._handle_submit({"kind": "echo", "client": "a",
                                        "job_id": job_id,
                                        "payload": payload})
            _drain_service(service, len(jobs))
            outcomes[mode] = {
                job_id: service.queue.outcome(job_id) for job_id, _ in jobs
            }
            _close_service(service)
        # Byte-identical settlements: same seeds, same results.
        assert outcomes["fork"] == outcomes["persistent"]
        assert outcomes["fork"]["p-0"]["result"]["seed"] == job_seed("p-0")

    def test_persistent_breaker_short_circuits_without_dispatch(
            self, tmp_path):
        service = _service(tmp_path, persistent=True, workers=1,
                           breaker_threshold=1)
        service._handle_submit(
            {"kind": "fail", "client": "a", "payload": {"message": "x"}}
        )
        _drain_service(service, 1)
        assert service.breaker.open_breakers()
        second = service._handle_submit(
            {"kind": "fail", "client": "a", "payload": {"message": "x"}}
        )
        _drain_service(service, 2)
        outcome = service.queue.outcome(second["job_id"])
        assert outcome["reason"].startswith("circuit_open:")
        _close_service(service)

    def test_persistent_worker_stats_in_health(self, tmp_path):
        service = _service(tmp_path, persistent=True, workers=2)
        assert service.health()["workers"]["started"] is False
        service._handle_submit({"kind": "echo", "client": "a"})
        _drain_service(service, 1)
        workers = service.health()["workers"]
        assert workers["mode"] == "persistent" and workers["started"]
        assert len(workers["workers"]) == 2
        assert all(w["pid"] > 0 for w in workers["workers"])
        assert workers["deaths"] == 0
        _close_service(service)


# ----------------------------------------------------------------------
# Client backoff: full jitter, bounded, deterministic
# ----------------------------------------------------------------------
class _SheddingClient(ServeClient):
    """ServeClient whose submit always sheds with a fixed retry_after."""

    def __init__(self, retry_after=0.2, relent_after=None):
        super().__init__("/nonexistent.sock", client_id="jitter-test")
        self.attempts = 0
        self.retry_after = retry_after
        self.relent_after = relent_after

    def submit(self, kind, payload=None, job_id=None):
        self.attempts += 1
        if self.relent_after and self.attempts > self.relent_after:
            return "accepted-%d" % self.attempts
        raise LoadShedded({"status": "retry_after",
                           "retry_after": self.retry_after,
                           "reason": "queue_full"})


class TestSubmitWithRetry:
    def test_sleeps_are_full_jitter_bounded(self):
        client = _SheddingClient(retry_after=0.2)
        sleeps = []
        with pytest.raises(LoadShedded):
            client.submit_with_retry("echo", max_attempts=6, backoff_cap=1.0,
                                     sleep=sleeps.append)
        # One sleep per shed except the last (re-raise immediately).
        assert client.attempts == 6
        assert len(sleeps) == 5
        for attempt, slept in enumerate(sleeps):
            ceiling = min(1.0, 0.2 * (2.0 ** attempt))
            assert 0.0 <= slept <= ceiling
        # Exactly the documented schedule: ceiling × hash fraction.
        expected = [
            min(1.0, 0.2 * (2.0 ** k)) * retry_jitter(
                "jitter-test:echo::%d:%d" % (os.getpid(), k)
            )
            for k in range(5)
        ]
        assert sleeps == pytest.approx(expected)

    def test_jitter_is_deterministic_per_identity(self):
        first, second = [], []
        client = _SheddingClient()
        with pytest.raises(LoadShedded):
            client.submit_with_retry("echo", max_attempts=4,
                                     sleep=first.append)
        client = _SheddingClient()
        with pytest.raises(LoadShedded):
            client.submit_with_retry("echo", max_attempts=4,
                                     sleep=second.append)
        assert first == second  # same (client, kind, pid, attempt) tuple

    def test_jitter_differs_across_clients(self):
        # The de-synchronization property: two clients shed at the same
        # instant must not sleep the same schedule.
        fractions_a = [retry_jitter("a:echo::1:%d" % k) for k in range(4)]
        fractions_b = [retry_jitter("b:echo::1:%d" % k) for k in range(4)]
        assert fractions_a != fractions_b
        for fraction in fractions_a + fractions_b:
            assert 0.0 <= fraction < 1.0

    def test_success_after_sheds_returns_job_id(self):
        client = _SheddingClient(relent_after=2)
        sleeps = []
        job_id = client.submit_with_retry("echo", max_attempts=8,
                                          sleep=sleeps.append)
        assert job_id == "accepted-3"
        assert len(sleeps) == 2

    def test_retry_cap_re_raises_last_shed(self):
        client = _SheddingClient()
        with pytest.raises(LoadShedded) as excinfo:
            client.submit_with_retry("echo", max_attempts=3,
                                     sleep=lambda _s: None)
        assert excinfo.value.reason == "queue_full"
        assert client.attempts == 3


# ----------------------------------------------------------------------
# Service: end-to-end over a real Unix socket (daemon in a thread)
# ----------------------------------------------------------------------
@pytest.fixture
def running_service(tmp_path):
    service = _service(tmp_path, max_depth=8, drain_seconds=2.0)
    final = {}

    def run():
        final["status"] = service.serve_forever()

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    client = ServeClient(service.socket_path, client_id="test")
    deadline = 50
    while not client.alive() and deadline:
        deadline -= 1
        threading.Event().wait(0.05)
    assert deadline, "daemon never came up"
    yield service, client, final
    if client.alive():
        try:
            client.stop()
        except (OSError, ServeError):  # repro: noqa[RES002] teardown race: the daemon may finish stopping between alive() and stop()
            pass
    thread.join(timeout=10.0)
    assert not thread.is_alive(), "daemon thread failed to stop"


class TestServiceEndToEnd:
    def test_submit_wait_status_stop_cycle(self, running_service):
        service, client, final = running_service
        job_id = client.submit("echo", {"hello": "world"})
        settled = client.wait(job_id, timeout=10.0)
        assert settled["status"] == "done"
        assert settled["result"]["echo"] == {"hello": "world"}
        status = client.status()
        assert status["counters"]["completed"] >= 1
        response = client.stop()
        assert response["stopping"] is True
        # The daemon drains, journals the stop marker, unlinks the socket.
        for _ in range(100):
            if not os.path.exists(service.socket_path):
                break
            threading.Event().wait(0.05)
        assert not os.path.exists(service.socket_path)
        stats = read_journal(service.journal_path)
        assert stats.clean_stop
        assert final["status"]["stopping"] is True

    def test_resubmitted_job_id_is_idempotent_over_the_wire(
            self, running_service):
        _, client, _ = running_service
        assert client.submit("echo", {"x": 1}, job_id="dup-1") == "dup-1"
        assert client.submit("echo", {"x": 1}, job_id="dup-1") == "dup-1"
        assert client.wait("dup-1", timeout=10.0)["status"] == "done"
        # Settled jobs answer resubmits too; conflicting reuse errors.
        assert client.submit("echo", {"x": 1}, job_id="dup-1") == "dup-1"
        with pytest.raises(ServeError, match="different kind/payload"):
            client.submit("echo", {"x": 2}, job_id="dup-1")

    def test_unknown_kind_surfaces_as_serve_error(self, running_service):
        _, client, _ = running_service
        with pytest.raises(ServeError, match="unknown job kind"):
            client.submit("nope")

    def test_wait_on_unknown_job_raises(self, running_service):
        _, client, _ = running_service
        with pytest.raises(ServeError):
            client.wait("job-missing", timeout=1.0)

    def test_resample_over_the_wire_matches_local(self, running_service,
                                                  blob_data):
        _, client, _ = running_service
        x, y = blob_data
        payload = {"x": x.tolist(), "y": y.tolist(), "sampler": "eos"}
        job_id = client.submit("resample", payload, job_id="wire-1")
        settled = client.wait(job_id, timeout=30.0)
        assert settled["status"] == "done"
        local = default_router().dispatch(
            _job("wire-1", kind="resample", payload=payload)
        )
        assert settled["result"] == local
        counts = np.asarray(settled["result"]["class_counts"])
        assert (counts == counts[0]).all()

    def test_second_daemon_refuses_live_socket(self, running_service,
                                               tmp_path):
        service, _, _ = running_service
        from repro.serve import ServiceAlreadyRunning

        rival = ReproService(
            service.socket_path, tmp_path / "rival.jsonl"
        )
        with pytest.raises(ServiceAlreadyRunning):
            rival._claim_socket()
        rival.queue.close()
