"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core import EOS
from repro.core.gap import class_feature_ranges, generalization_gap, range_excess
from repro.data.imbalance import exponential_profile, step_profile
from repro.metrics import (
    balanced_accuracy,
    confusion_matrix,
    geometric_mean,
    macro_f1,
)
from repro.neighbors import KNeighbors, pairwise_distances
from repro.sampling import SMOTE, RandomOverSampler, sampling_targets
from repro.tensor import Tensor, log_softmax, softmax

finite_floats = st.floats(-50.0, 50.0, allow_nan=False, allow_infinity=False)


def feature_matrices(min_rows=2, max_rows=24, min_cols=1, max_cols=6):
    return st.integers(min_rows, max_rows).flatmap(
        lambda n: st.integers(min_cols, max_cols).flatmap(
            lambda d: arrays(np.float64, (n, d), elements=finite_floats)
        )
    )


def labeled_data(min_rows=4, max_rows=30, num_classes=3):
    """Feature matrix + labels guaranteed to contain >= 2 classes."""

    @st.composite
    def build(draw):
        n = draw(st.integers(min_rows, max_rows))
        d = draw(st.integers(1, 5))
        x = draw(arrays(np.float64, (n, d), elements=finite_floats))
        y = draw(
            arrays(
                np.int64,
                (n,),
                elements=st.integers(0, num_classes - 1),
            ).filter(lambda arr: len(np.unique(arr)) >= 2)
        )
        return x, y

    return build()


class TestTensorProperties:
    @given(arrays(np.float64, (4, 5), elements=finite_floats))
    @settings(max_examples=40, deadline=None)
    def test_softmax_rows_are_distributions(self, data):
        s = softmax(Tensor(data), axis=1).data
        assert np.all(s >= 0)
        np.testing.assert_allclose(s.sum(axis=1), 1.0, atol=1e-9)

    @given(arrays(np.float64, (4, 5), elements=finite_floats))
    @settings(max_examples=40, deadline=None)
    def test_softmax_shift_invariance(self, data):
        a = softmax(Tensor(data), axis=1).data
        b = softmax(Tensor(data + 7.5), axis=1).data
        np.testing.assert_allclose(a, b, atol=1e-9)

    @given(arrays(np.float64, (3, 4), elements=finite_floats))
    @settings(max_examples=40, deadline=None)
    def test_log_softmax_nonpositive(self, data):
        assert np.all(log_softmax(Tensor(data)).data <= 1e-12)

    @given(
        arrays(np.float64, (3, 4), elements=finite_floats),
        arrays(np.float64, (3, 4), elements=finite_floats),
    )
    @settings(max_examples=40, deadline=None)
    def test_addition_gradient_is_ones(self, a_data, b_data):
        a = Tensor(a_data, requires_grad=True)
        b = Tensor(b_data, requires_grad=True)
        (a + b).sum().backward()
        np.testing.assert_allclose(a.grad, 1.0)
        np.testing.assert_allclose(b.grad, 1.0)

    @given(arrays(np.float64, (6,), elements=finite_floats))
    @settings(max_examples=40, deadline=None)
    def test_relu_idempotent(self, data):
        once = Tensor(data).relu().data
        twice = Tensor(once).relu().data
        np.testing.assert_array_equal(once, twice)


class TestDistanceProperties:
    @given(feature_matrices())
    @settings(max_examples=30, deadline=None)
    def test_self_distance_diagonal_zero(self, x):
        d = pairwise_distances(x, x)
        # The a^2 + b^2 - 2ab formulation cancels catastrophically for
        # large-magnitude rows; allow error proportional to the scale.
        scale = 1.0 + np.abs(x).max()
        np.testing.assert_allclose(np.diag(d), 0.0, atol=1e-5 * scale)

    @given(feature_matrices())
    @settings(max_examples=30, deadline=None)
    def test_symmetry(self, x):
        d = pairwise_distances(x, x)
        np.testing.assert_allclose(d, d.T, atol=1e-8)

    @given(feature_matrices(min_rows=3))
    @settings(max_examples=25, deadline=None)
    def test_knn_distances_sorted(self, x):
        k = min(3, x.shape[0])
        dists, _ = KNeighbors(k=k).fit(x).query(x)
        assert np.all(np.diff(dists, axis=1) >= -1e-9)


class TestImbalanceProperties:
    @given(
        st.integers(2, 500),
        st.integers(2, 30),
        st.floats(1.0, 500.0, allow_nan=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_exponential_profile_invariants(self, n_max, k, ratio):
        counts = exponential_profile(n_max, k, ratio)
        assert len(counts) == k
        assert counts[0] == n_max
        assert counts.min() >= 1
        assert all(a >= b for a, b in zip(counts, counts[1:]))

    @given(st.integers(10, 500), st.integers(2, 20), st.floats(1.0, 100.0))
    @settings(max_examples=40, deadline=None)
    def test_step_profile_two_levels(self, n_max, k, ratio):
        counts = step_profile(n_max, k, ratio)
        assert len(set(counts)) <= 2


class TestSamplerProperties:
    @given(labeled_data())
    @settings(max_examples=25, deadline=None)
    def test_sampling_targets_balance(self, data):
        _, y = data
        targets = sampling_targets(y)
        counts = np.bincount(y)
        n_max = counts.max()
        for cls, n_new in targets.items():
            assert counts[cls] + n_new == n_max

    @given(labeled_data())
    @settings(max_examples=20, deadline=None)
    def test_random_oversampler_balances_any_input(self, data):
        x, y = data
        xr, yr = RandomOverSampler(random_state=0).fit_resample(x, y)
        counts = np.bincount(yr)
        counts = counts[counts > 0]
        assert len(set(counts)) == 1

    @given(labeled_data(min_rows=6))
    @settings(max_examples=20, deadline=None)
    def test_smote_preserves_originals_and_balances(self, data):
        x, y = data
        xr, yr = SMOTE(k_neighbors=3, random_state=0).fit_resample(x, y)
        np.testing.assert_array_equal(xr[: len(x)], x)
        counts = np.bincount(yr)
        assert len(set(counts[counts > 0])) == 1

    @given(labeled_data(min_rows=6))
    @settings(max_examples=20, deadline=None)
    def test_eos_balances_any_input(self, data):
        x, y = data
        xr, yr = EOS(k_neighbors=3, random_state=0).fit_resample(x, y)
        counts = np.bincount(yr)
        assert len(set(counts[counts > 0])) == 1

    @given(labeled_data(min_rows=8))
    @settings(max_examples=20, deadline=None)
    def test_smote_never_expands_class_ranges(self, data):
        """The interpolation invariant the paper contrasts EOS against."""
        x, y = data
        xr, yr = SMOTE(k_neighbors=3, random_state=0).fit_resample(x, y)
        for cls in np.unique(y):
            orig = x[y == cls]
            res = xr[yr == cls]
            assert np.all(res.min(axis=0) >= orig.min(axis=0) - 1e-9)
            assert np.all(res.max(axis=0) <= orig.max(axis=0) + 1e-9)


class TestSamplerRegistryProperties:
    @given(labeled_data(min_rows=8, max_rows=24))
    @settings(max_examples=10, deadline=None)
    def test_neighbor_samplers_never_crash_and_balance(self, data):
        """Every neighbor-based sampler in the registry must survive
        arbitrary labeled data and leave classes balanced."""
        from repro.experiments import build_sampler

        x, y = data
        for name in ("ros", "smote", "bsmote", "adasyn", "rbo", "swim", "eos"):
            sampler = build_sampler(name, k_neighbors=3, random_state=0)
            xr, yr = sampler.fit_resample(x, y)
            counts = np.bincount(yr)
            counts = counts[counts > 0]
            assert len(set(counts)) == 1, name
            assert np.all(np.isfinite(xr)), name


class TestGapProperties:
    @given(labeled_data(min_rows=6))
    @settings(max_examples=25, deadline=None)
    def test_gap_nonnegative(self, data):
        x, y = data
        half = len(x) // 2
        gap = generalization_gap(x[:half], y[:half], x[half:], y[half:])
        per_class = gap["per_class"]
        assert np.all((per_class >= 0) | np.isnan(per_class))

    @given(labeled_data(min_rows=6))
    @settings(max_examples=25, deadline=None)
    def test_gap_zero_against_itself(self, data):
        x, y = data
        gap = generalization_gap(x, y, x, y)
        valid = ~np.isnan(gap["per_class"])
        np.testing.assert_allclose(gap["per_class"][valid], 0.0, atol=1e-12)

    @given(feature_matrices(min_rows=4))
    @settings(max_examples=25, deadline=None)
    def test_range_excess_monotone_in_test_spread(self, x):
        """Widening the test set's spread can only increase the gap."""
        y = np.zeros(x.shape[0], dtype=np.int64)
        train = class_feature_ranges(x, y, 1)
        test_narrow = class_feature_ranges(x * 0.5, y, 1)
        test_wide = class_feature_ranges(x * 2.0, y, 1)
        assert range_excess(train, test_wide)[0] >= range_excess(
            train, test_narrow
        )[0] - 1e-12


class TestMetricProperties:
    @given(
        arrays(np.int64, (20,), elements=st.integers(0, 3)),
        arrays(np.int64, (20,), elements=st.integers(0, 3)),
    )
    @settings(max_examples=50, deadline=None)
    def test_metrics_bounded(self, y_true, y_pred):
        for metric in (balanced_accuracy, geometric_mean, macro_f1):
            value = metric(y_true, y_pred)
            assert 0.0 <= value <= 1.0

    @given(arrays(np.int64, (15,), elements=st.integers(0, 3)))
    @settings(max_examples=50, deadline=None)
    def test_perfect_prediction_scores_one(self, y):
        assert balanced_accuracy(y, y) == 1.0
        assert geometric_mean(y, y) == 1.0
        assert macro_f1(y, y) == 1.0

    @given(
        arrays(np.int64, (20,), elements=st.integers(0, 3)),
        arrays(np.int64, (20,), elements=st.integers(0, 3)),
    )
    @settings(max_examples=50, deadline=None)
    def test_confusion_matrix_total(self, y_true, y_pred):
        cm = confusion_matrix(y_true, y_pred, num_classes=4)
        assert cm.sum() == 20
        assert np.all(cm >= 0)
