"""Tests for the over-/under-sampling baselines."""

import numpy as np
import pytest

from repro.sampling import (
    ADASYN,
    BalancedSVMSampler,
    BorderlineSMOTE,
    RandomOverSampler,
    RandomUnderSampler,
    Remix,
    SMOTE,
    sampling_targets,
)


@pytest.fixture
def rng():
    return np.random.default_rng(51)


@pytest.fixture
def imbalanced(rng):
    """Two well-separated classes, 50 vs 5."""
    x = np.concatenate(
        [rng.normal(0.0, 0.5, size=(50, 3)), rng.normal(5.0, 0.5, size=(5, 3))]
    )
    y = np.array([0] * 50 + [1] * 5)
    return x, y


ALL_BALANCERS = [
    RandomOverSampler,
    SMOTE,
    BorderlineSMOTE,
    ADASYN,
    BalancedSVMSampler,
    Remix,
]


class TestSamplingTargets:
    def test_auto_balances_to_max(self):
        y = np.array([0] * 10 + [1] * 4 + [2] * 1)
        assert sampling_targets(y) == {1: 6, 2: 9}

    def test_already_balanced_empty(self):
        assert sampling_targets(np.array([0, 0, 1, 1])) == {}

    def test_dict_strategy(self):
        y = np.array([0] * 10 + [1] * 4)
        assert sampling_targets(y, {1: 8}) == {1: 4}

    def test_dict_below_current_raises(self):
        with pytest.raises(ValueError):
            sampling_targets(np.array([0] * 10 + [1] * 4), {1: 2})

    def test_dict_empty_class_raises(self):
        with pytest.raises(ValueError):
            sampling_targets(np.array([0, 0]), {1: 5})

    def test_unknown_strategy(self):
        with pytest.raises(ValueError):
            sampling_targets(np.array([0, 1]), "all")


class TestCommonSamplerContract:
    @pytest.mark.parametrize("cls", ALL_BALANCERS)
    def test_balances_counts(self, cls, imbalanced):
        x, y = imbalanced
        xr, yr = cls(random_state=0).fit_resample(x, y)
        counts = np.bincount(yr)
        if cls is BalancedSVMSampler:
            # SVM relabeling may move a few points between classes.
            assert counts.min() >= 40
        else:
            np.testing.assert_array_equal(counts, [50, 50])

    @pytest.mark.parametrize("cls", ALL_BALANCERS)
    def test_originals_preserved_as_prefix(self, cls, imbalanced):
        x, y = imbalanced
        xr, yr = cls(random_state=0).fit_resample(x, y)
        np.testing.assert_array_equal(xr[: len(x)], x)
        np.testing.assert_array_equal(yr[: len(y)], y)

    @pytest.mark.parametrize("cls", ALL_BALANCERS)
    def test_deterministic_given_seed(self, cls, imbalanced):
        x, y = imbalanced
        a = cls(random_state=3).fit_resample(x, y)
        b = cls(random_state=3).fit_resample(x, y)
        np.testing.assert_array_equal(a[0], b[0])
        np.testing.assert_array_equal(a[1], b[1])

    @pytest.mark.parametrize("cls", ALL_BALANCERS)
    def test_input_validation(self, cls):
        with pytest.raises(ValueError):
            cls().fit_resample(np.zeros((3, 2, 2)), np.zeros(3))
        with pytest.raises(ValueError):
            cls().fit_resample(np.zeros((3, 2)), np.zeros(4))

    @pytest.mark.parametrize("cls", ALL_BALANCERS)
    def test_balanced_input_is_noop(self, cls, rng):
        x = rng.normal(size=(20, 2))
        y = np.array([0, 1] * 10)
        xr, yr = cls(random_state=0).fit_resample(x, y)
        assert len(xr) == 20


class TestSMOTE:
    def test_synthetic_on_segments(self, rng):
        """SMOTE points lie on segments between same-class neighbors —
        in particular inside the minority bounding box (no expansion)."""
        x = np.concatenate(
            [rng.normal(0, 1, size=(40, 2)), rng.uniform(4, 5, size=(6, 2))]
        )
        y = np.array([0] * 40 + [1] * 6)
        xr, yr = SMOTE(k_neighbors=3, random_state=0).fit_resample(x, y)
        synth = xr[46:][yr[46:] == 1]
        lo = x[y == 1].min(axis=0)
        hi = x[y == 1].max(axis=0)
        assert np.all(synth >= lo - 1e-9)
        assert np.all(synth <= hi + 1e-9)

    def test_singleton_class_duplicates(self, rng):
        x = np.concatenate([rng.normal(size=(9, 2)), [[7.0, 7.0]]])
        y = np.array([0] * 9 + [1])
        xr, yr = SMOTE(random_state=0).fit_resample(x, y)
        synth = xr[10:]
        np.testing.assert_allclose(synth, [[7.0, 7.0]] * 8)

    def test_k_capped_at_class_size(self, rng):
        x = np.concatenate([rng.normal(size=(20, 2)), rng.normal(5, 1, (3, 2))])
        y = np.array([0] * 20 + [1] * 3)
        # k=10 > 2 available neighbors: must not crash.
        xr, yr = SMOTE(k_neighbors=10, random_state=0).fit_resample(x, y)
        assert np.bincount(yr)[1] == 20

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            SMOTE(k_neighbors=0)


class TestBorderlineSMOTE:
    def test_danger_mask_identifies_boundary(self, rng):
        # Minority: 5 tightly packed far away (interior), 5 scattered
        # individually inside the majority cloud (boundary points whose
        # neighborhoods are dominated by enemies).
        majority = rng.normal(0.0, 0.5, size=(60, 2))
        interior = rng.normal([8.0, 8.0], 0.05, size=(5, 2))
        # Boundary points in tight pairs inside the majority cloud: each
        # keeps one same-class neighbor, so its m-neighborhood is mostly
        # (but not entirely) enemies -> "danger", not "noise".
        boundary = np.array(
            [[0.6, 0.0], [0.62, 0.02], [0.0, 0.6], [0.02, 0.62]]
        )
        x = np.concatenate([majority, interior, boundary])
        y = np.array([0] * 60 + [1] * 9)
        sampler = BorderlineSMOTE(m_neighbors=4, random_state=0)
        danger = sampler.danger_mask(x, y, 1)
        assert danger[5:].sum() >= 3  # boundary points flagged
        assert danger[:5].sum() == 0  # interior cluster is safe

    def test_falls_back_when_no_danger(self, rng):
        # Fully separated: no danger points, must still balance.
        x = np.concatenate([rng.normal(0, 0.1, (20, 2)), rng.normal(50, 0.1, (4, 2))])
        y = np.array([0] * 20 + [1] * 4)
        xr, yr = BorderlineSMOTE(m_neighbors=3, random_state=0).fit_resample(x, y)
        np.testing.assert_array_equal(np.bincount(yr), [20, 20])


class TestADASYN:
    def test_allocates_to_hard_points(self, rng):
        # Two minority clusters: "hard" mixed into the majority cloud,
        # "easy" far away.  ADASYN must seed generation from the hard one.
        majority = rng.normal(0.0, 0.5, size=(100, 2))
        hard = rng.normal([0.8, 0.0], 0.5, size=(5, 2))
        easy = rng.normal([8.0, 8.0], 0.3, size=(5, 2))
        x = np.concatenate([majority, hard, easy])
        y = np.array([0] * 100 + [1] * 10)
        xr, yr = ADASYN(k_neighbors=5, random_state=0).fit_resample(x, y)
        synth = xr[110:]
        dist_to_hard = np.linalg.norm(synth - [0.8, 0.0], axis=1)
        dist_to_easy = np.linalg.norm(synth - [8.0, 8.0], axis=1)
        assert (dist_to_hard < dist_to_easy).mean() > 0.5

    def test_uniform_when_isolated(self, rng):
        x = np.concatenate([rng.normal(0, 0.1, (20, 2)), rng.normal(50, 0.1, (5, 2))])
        y = np.array([0] * 20 + [1] * 5)
        xr, yr = ADASYN(random_state=0).fit_resample(x, y)
        np.testing.assert_array_equal(np.bincount(yr), [20, 20])


class TestBalancedSVM:
    def test_relabels_cross_boundary_points(self, rng):
        """Synthetic points generated across the SVM boundary change class."""
        x = np.concatenate(
            [rng.normal(0.0, 0.5, (50, 2)), rng.normal(3.0, 1.5, (8, 2))]
        )
        y = np.array([0] * 50 + [1] * 8)
        keep = BalancedSVMSampler(random_state=0, keep_labels=True)
        move = BalancedSVMSampler(random_state=0, keep_labels=False)
        xk, yk = keep.fit_resample(x, y)
        xm, ym = move.fit_resample(x, y)
        # keep_labels drops disagreeing points; move relabels them.
        assert len(xk) <= len(xm)

    def test_svm_params_forwarded(self, imbalanced):
        x, y = imbalanced
        sampler = BalancedSVMSampler(random_state=0, svm_params={"epochs": 2})
        xr, yr = sampler.fit_resample(x, y)
        assert len(xr) >= len(x)


class TestRemix:
    def test_mixed_images_are_convex_combinations(self, rng):
        x = np.concatenate([np.zeros((30, 4)), np.ones((5, 4))])
        y = np.array([0] * 30 + [1] * 5)
        xr, yr = Remix(random_state=0).fit_resample(x, y)
        synth = xr[35:]
        assert np.all(synth >= -1e-9) and np.all(synth <= 1 + 1e-9)

    def test_minority_label_kept(self, imbalanced):
        x, y = imbalanced
        xr, yr = Remix(random_state=0).fit_resample(x, y)
        assert np.all(yr[len(y):] == 1)

    def test_minority_biased_mixing(self, rng):
        """Minority pixels dominate each mix (lambda >= 0.5)."""
        x = np.concatenate([np.zeros((40, 2)), np.full((4, 2), 10.0)])
        y = np.array([0] * 40 + [1] * 4)
        xr, _ = Remix(random_state=0).fit_resample(x, y)
        synth = xr[44:]
        assert synth.mean() >= 5.0 - 1e-9

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            Remix(alpha=0.0)
        with pytest.raises(ValueError):
            Remix(kappa=0.5)


class TestRandomSamplers:
    def test_oversampler_duplicates_existing(self, imbalanced):
        x, y = imbalanced
        xr, yr = RandomOverSampler(random_state=0).fit_resample(x, y)
        synth = xr[len(x):]
        pool = {tuple(row) for row in x[y == 1]}
        assert all(tuple(row) in pool for row in synth)

    def test_undersampler_balances_down(self, imbalanced):
        x, y = imbalanced
        xr, yr = RandomUnderSampler(random_state=0).fit_resample(x, y)
        np.testing.assert_array_equal(np.bincount(yr), [5, 5])

    def test_undersampler_dict_strategy(self, imbalanced):
        x, y = imbalanced
        xr, yr = RandomUnderSampler(
            sampling_strategy={0: 10, 1: 5}, random_state=0
        ).fit_resample(x, y)
        np.testing.assert_array_equal(np.bincount(yr), [10, 5])

    def test_undersampler_unknown_strategy(self, imbalanced):
        x, y = imbalanced
        with pytest.raises(ValueError):
            RandomUnderSampler(sampling_strategy="half").fit_resample(x, y)
