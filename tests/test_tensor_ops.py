"""Unit tests for the autograd engine's elementary operations."""

import numpy as np
import pytest

from repro.tensor import Tensor, concatenate, no_grad, stack, where


class TestConstruction:
    def test_wraps_array(self):
        from repro.tensor import default_dtype

        t = Tensor([[1.0, 2.0], [3.0, 4.0]])
        assert t.shape == (2, 2)
        # Python lists/scalars land on the substrate default (float32);
        # numpy arrays keep their explicit dtype.
        assert t.dtype == default_dtype()
        assert Tensor(np.ones(2, dtype=np.float64)).dtype == np.float64

    def test_requires_grad_flag(self):
        t = Tensor([1.0], requires_grad=True)
        assert t.requires_grad
        assert t.grad is None

    def test_integer_tensor_cannot_require_grad(self):
        with pytest.raises(TypeError):
            Tensor(np.array([1, 2, 3]), requires_grad=True)

    def test_nested_tensor_rejected(self):
        with pytest.raises(TypeError):
            Tensor(Tensor([1.0]))

    def test_detach_shares_data_but_cuts_graph(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        d = t.detach()
        assert not d.requires_grad
        assert d.data is t.data

    def test_copy_is_deep(self):
        t = Tensor([1.0, 2.0])
        c = t.copy()
        c.data[0] = 99.0
        assert t.data[0] == 1.0

    def test_item_and_len(self):
        assert Tensor([[3.5]]).item() == 3.5
        assert len(Tensor(np.zeros((4, 2)))) == 4


class TestArithmetic:
    def test_add_backward(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        (a + b).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 1.0])
        np.testing.assert_allclose(b.grad, [1.0, 1.0])

    def test_add_broadcast_backward(self):
        a = Tensor(np.ones((3, 4)), requires_grad=True)
        b = Tensor(np.ones(4), requires_grad=True)
        (a + b).sum().backward()
        np.testing.assert_allclose(b.grad, [3.0] * 4)

    def test_mul_backward(self):
        a = Tensor([2.0, 3.0], requires_grad=True)
        b = Tensor([5.0, 7.0], requires_grad=True)
        (a * b).sum().backward()
        np.testing.assert_allclose(a.grad, [5.0, 7.0])
        np.testing.assert_allclose(b.grad, [2.0, 3.0])

    def test_sub_and_neg(self):
        a = Tensor([1.0], requires_grad=True)
        b = Tensor([2.0], requires_grad=True)
        (a - b).backward()
        assert a.grad[0] == 1.0
        assert b.grad[0] == -1.0
        a.zero_grad()
        (-a).backward()
        assert a.grad[0] == -1.0

    def test_div_backward(self):
        a = Tensor([6.0], requires_grad=True)
        b = Tensor([2.0], requires_grad=True)
        (a / b).backward()
        assert a.grad[0] == pytest.approx(0.5)
        assert b.grad[0] == pytest.approx(-6.0 / 4.0)

    def test_scalar_coercion(self):
        a = Tensor([2.0], requires_grad=True)
        out = 3.0 * a + 1.0 - a / 2.0
        out.backward()
        assert a.grad[0] == pytest.approx(2.5)

    def test_rsub_rdiv(self):
        a = Tensor([2.0], requires_grad=True)
        (10.0 - a).backward()
        assert a.grad[0] == -1.0
        a.zero_grad()
        (10.0 / a).backward()
        assert a.grad[0] == pytest.approx(-10.0 / 4.0)

    def test_pow_scalar_backward(self):
        a = Tensor([3.0], requires_grad=True)
        (a ** 2).backward()
        assert a.grad[0] == pytest.approx(6.0)

    def test_pow_negative_exponent(self):
        a = Tensor([4.0], requires_grad=True)
        (a ** -0.5).backward()
        assert a.grad[0] == pytest.approx(-0.5 * 4.0 ** -1.5)

    def test_matmul_2d_backward(self):
        a = Tensor(np.array([[1.0, 2.0]]), requires_grad=True)
        b = Tensor(np.array([[3.0], [4.0]]), requires_grad=True)
        (a @ b).sum().backward()
        np.testing.assert_allclose(a.grad, [[3.0, 4.0]])
        np.testing.assert_allclose(b.grad, [[1.0], [2.0]])

    def test_matmul_vector_cases(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        m = Tensor(np.array([[1.0, 0.0], [0.0, 1.0]]), requires_grad=True)
        (a @ m).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 1.0])
        a.zero_grad()
        (m @ a).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 1.0])


class TestElementwise:
    def test_exp_log_roundtrip_grad(self):
        a = Tensor([1.5], requires_grad=True)
        a.exp().log().backward()
        assert a.grad[0] == pytest.approx(1.0)

    def test_relu_masks_gradient(self):
        a = Tensor([-1.0, 2.0], requires_grad=True)
        a.relu().sum().backward()
        np.testing.assert_allclose(a.grad, [0.0, 1.0])

    def test_sigmoid_range_and_grad(self):
        a = Tensor([0.0], requires_grad=True)
        s = a.sigmoid()
        assert s.data[0] == pytest.approx(0.5)
        s.backward()
        assert a.grad[0] == pytest.approx(0.25)

    def test_sigmoid_extreme_values_stable(self):
        a = Tensor([1000.0, -1000.0])
        s = a.sigmoid().data
        assert np.all(np.isfinite(s))
        assert s[0] == pytest.approx(1.0)
        assert s[1] == pytest.approx(0.0)

    def test_tanh_grad(self):
        a = Tensor([0.5], requires_grad=True)
        a.tanh().backward()
        assert a.grad[0] == pytest.approx(1.0 - np.tanh(0.5) ** 2)

    def test_leaky_relu(self):
        a = Tensor([-2.0, 2.0], requires_grad=True)
        a.leaky_relu(0.1).sum().backward()
        np.testing.assert_allclose(a.grad, [0.1, 1.0])

    def test_sqrt_grad(self):
        a = Tensor([4.0], requires_grad=True)
        a.sqrt().backward()
        assert a.grad[0] == pytest.approx(0.25)

    def test_abs_grad(self):
        a = Tensor([-3.0, 2.0], requires_grad=True)
        a.abs().sum().backward()
        np.testing.assert_allclose(a.grad, [-1.0, 1.0])

    def test_clip_gradient_mask(self):
        a = Tensor([-2.0, 0.5, 2.0], requires_grad=True)
        a.clip(0.0, 1.0).sum().backward()
        np.testing.assert_allclose(a.grad, [0.0, 1.0, 0.0])

    def test_maximum_routes_gradient(self):
        a = Tensor([1.0, 5.0], requires_grad=True)
        b = Tensor([3.0, 2.0], requires_grad=True)
        a.maximum(b).sum().backward()
        np.testing.assert_allclose(a.grad, [0.0, 1.0])
        np.testing.assert_allclose(b.grad, [1.0, 0.0])


class TestReductions:
    def test_sum_axis_keepdims(self):
        a = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        out = a.sum(axis=1, keepdims=True)
        assert out.shape == (2, 1)
        out.sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((2, 3)))

    def test_mean_grad_scaled(self):
        a = Tensor(np.ones((2, 4)), requires_grad=True)
        a.mean().backward()
        np.testing.assert_allclose(a.grad, np.full((2, 4), 1 / 8))

    def test_mean_axis_tuple(self):
        a = Tensor(np.ones((2, 3, 4)), requires_grad=True)
        out = a.mean(axis=(1, 2))
        assert out.shape == (2,)
        out.sum().backward()
        np.testing.assert_allclose(a.grad, np.full((2, 3, 4), 1 / 12))

    def test_var_matches_numpy(self):
        data = np.random.default_rng(0).normal(size=(5, 7))
        t = Tensor(data)
        np.testing.assert_allclose(t.var(axis=0).data, data.var(axis=0))

    def test_max_gradient_splits_ties(self):
        a = Tensor([2.0, 2.0, 1.0], requires_grad=True)
        a.max().backward()
        np.testing.assert_allclose(a.grad, [0.5, 0.5, 0.0])

    def test_max_axis(self):
        a = Tensor(np.array([[1.0, 3.0], [5.0, 2.0]]), requires_grad=True)
        a.max(axis=1).sum().backward()
        np.testing.assert_allclose(a.grad, [[0.0, 1.0], [1.0, 0.0]])

    def test_min_is_negated_max(self):
        a = Tensor([3.0, 1.0, 2.0], requires_grad=True)
        m = a.min()
        assert m.item() == 1.0
        m.backward()
        np.testing.assert_allclose(a.grad, [0.0, 1.0, 0.0])


class TestShapes:
    def test_reshape_roundtrip(self):
        a = Tensor(np.arange(12.0), requires_grad=True)
        a.reshape(3, 4).sum().backward()
        assert a.grad.shape == (12,)

    def test_flatten(self):
        a = Tensor(np.zeros((2, 3, 4)))
        assert a.flatten().shape == (2, 12)
        assert a.flatten(start_dim=0).shape == (24,)

    def test_transpose_grad(self):
        a = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        out = a.transpose()
        assert out.shape == (3, 2)
        (out * out).sum().backward()
        np.testing.assert_allclose(a.grad, 2 * a.data)

    def test_transpose_with_axes(self):
        a = Tensor(np.zeros((2, 3, 4)), requires_grad=True)
        out = a.transpose(2, 0, 1)
        assert out.shape == (4, 2, 3)
        out.sum().backward()
        assert a.grad.shape == (2, 3, 4)

    def test_getitem_accumulates_on_duplicate_indices(self):
        a = Tensor(np.arange(4.0), requires_grad=True)
        idx = np.array([0, 0, 2])
        a[idx].sum().backward()
        np.testing.assert_allclose(a.grad, [2.0, 0.0, 1.0, 0.0])

    def test_pad2d(self):
        a = Tensor(np.ones((1, 1, 2, 2)), requires_grad=True)
        out = a.pad2d(1)
        assert out.shape == (1, 1, 4, 4)
        out.sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((1, 1, 2, 2)))

    def test_pad2d_rejects_non_4d(self):
        with pytest.raises(ValueError):
            Tensor(np.ones((2, 2))).pad2d(1)

    def test_concatenate_grad_routing(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.ones((3, 2)), requires_grad=True)
        out = concatenate([a, b], axis=0)
        assert out.shape == (5, 2)
        (out * 2).sum().backward()
        np.testing.assert_allclose(a.grad, np.full((2, 2), 2.0))
        np.testing.assert_allclose(b.grad, np.full((3, 2), 2.0))

    def test_stack_grad_routing(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        out = stack([a, b], axis=0)
        assert out.shape == (2, 2)
        out.sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 1.0])

    def test_where_routes_by_condition(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([10.0, 20.0], requires_grad=True)
        where(np.array([True, False]), a, b).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 0.0])
        np.testing.assert_allclose(b.grad, [0.0, 1.0])


class TestBackwardSemantics:
    def test_backward_on_non_grad_tensor_raises(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_backward_shape_mismatch_raises(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(ValueError):
            a.backward(np.ones(3))

    def test_gradient_accumulates_across_backwards(self):
        a = Tensor([1.0], requires_grad=True)
        (a * 2).backward()
        (a * 2).backward()
        assert a.grad[0] == 4.0

    def test_diamond_graph_accumulates_once_per_path(self):
        a = Tensor([3.0], requires_grad=True)
        b = a * 2
        c = a * 5
        (b + c).backward()
        assert a.grad[0] == 7.0

    def test_reused_node_in_graph(self):
        a = Tensor([2.0], requires_grad=True)
        b = a * a  # a used twice
        b.backward()
        assert a.grad[0] == 4.0

    def test_no_grad_blocks_graph(self):
        a = Tensor([1.0], requires_grad=True)
        with no_grad():
            out = a * 2
        assert not out.requires_grad
        assert out._backward is None

    def test_no_grad_restores_on_exception(self):
        from repro.tensor import is_grad_enabled

        try:
            with no_grad():
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert is_grad_enabled()

    def test_comparisons_are_detached(self):
        a = Tensor([1.0], requires_grad=True)
        assert not (a > 0).requires_grad
        assert not (a < 0).requires_grad
        assert not (a >= 1).requires_grad
        assert not (a <= 1).requires_grad

    def test_deep_chain_does_not_overflow(self):
        # Iterative topological sort: thousands of nodes must work.
        a = Tensor([1.0], requires_grad=True)
        out = a
        for _ in range(3000):
            out = out + 1.0
        out.backward()
        assert a.grad[0] == 1.0
