"""Tests for model/embedding/dataset checkpointing."""

import os

import numpy as np
import pytest

from repro.data import ArrayDataset
from repro.nn import SmallConvNet, resnet8
from repro.resilience import CheckpointCorruptError
from repro.tensor import Tensor
from repro.utils import (
    load_dataset,
    load_embeddings,
    load_model,
    save_dataset,
    save_embeddings,
    save_model,
)
from repro.utils.serialization import (
    _flip_bytes,
    digest_path,
    file_sha256,
    load_arrays,
    read_digest,
    save_arrays,
)


@pytest.fixture
def rng():
    return np.random.default_rng(131)


class TestModelCheckpoint:
    def test_roundtrip_identical_outputs(self, tmp_path, rng):
        model = SmallConvNet(num_classes=4, width=4, rng=rng)
        x = Tensor(rng.normal(size=(3, 3, 8, 8)))
        model.eval()
        before = model(x).data.copy()

        path = tmp_path / "model.npz"
        save_model(model, path)
        clone = SmallConvNet(num_classes=4, width=4, rng=np.random.default_rng(9))
        load_model(clone, path)
        clone.eval()
        np.testing.assert_allclose(clone(x).data, before, atol=1e-12)

    def test_batchnorm_buffers_preserved(self, tmp_path, rng):
        model = SmallConvNet(num_classes=2, width=4, rng=rng)
        model.bn1.running_mean[...] = 7.0
        path = tmp_path / "model.npz"
        save_model(model, path)
        clone = SmallConvNet(num_classes=2, width=4, rng=rng)
        load_model(clone, path)
        np.testing.assert_allclose(clone.bn1.running_mean, 7.0)

    def test_resnet_roundtrip(self, tmp_path, rng):
        model = resnet8(num_classes=3, width_multiplier=0.25, rng=rng)
        path = tmp_path / "resnet.npz"
        save_model(model, path)
        clone = resnet8(
            num_classes=3, width_multiplier=0.25, rng=np.random.default_rng(5)
        )
        load_model(clone, path)
        for (name_a, p_a), (name_b, p_b) in zip(
            model.named_parameters(), clone.named_parameters()
        ):
            assert name_a == name_b
            np.testing.assert_array_equal(p_a.data, p_b.data)

    def test_incompatible_model_raises(self, tmp_path, rng):
        model = SmallConvNet(num_classes=4, width=4, rng=rng)
        path = tmp_path / "model.npz"
        save_model(model, path)
        other = SmallConvNet(num_classes=4, width=8, rng=rng)
        with pytest.raises(ValueError):
            load_model(other, path)


class TestEmbeddingCheckpoint:
    def test_roundtrip(self, tmp_path, rng):
        emb = rng.normal(size=(20, 8))
        labels = rng.integers(0, 3, 20)
        path = tmp_path / "emb.npz"
        save_embeddings(path, emb, labels)
        emb2, labels2 = load_embeddings(path)
        np.testing.assert_array_equal(emb2, emb)
        np.testing.assert_array_equal(labels2, labels)

    def test_misaligned_raises(self, tmp_path, rng):
        with pytest.raises(ValueError):
            save_embeddings(tmp_path / "x.npz", rng.normal(size=(5, 2)),
                            np.zeros(4))


class TestDigestSidecars:
    def test_save_arrays_records_matching_digest(self, tmp_path, rng):
        path = save_arrays(tmp_path / "a.npz", {"x": rng.normal(size=8)})
        recorded = read_digest(path)
        assert recorded is not None
        assert recorded == file_sha256(path)

    def test_model_and_embedding_writers_record_digests(self, tmp_path, rng):
        model = SmallConvNet(num_classes=2, width=4, rng=rng)
        model_path = save_model(model, tmp_path / "model.npz")
        emb_path = save_embeddings(tmp_path / "emb.npz",
                                   rng.normal(size=(5, 3)), np.zeros(5))
        for path in (model_path, emb_path):
            assert read_digest(path) == file_sha256(path)

    def test_missing_sidecar_reads_as_none(self, tmp_path):
        assert read_digest(tmp_path / "nothing.npz") is None

    def test_digest_path_is_a_sidecar(self):
        assert digest_path("a/b.npz") == "a/b.npz.sha256"


class TestCorruptCheckpoints:
    def test_flipped_bytes_raise_typed_error(self, tmp_path, rng):
        path = save_arrays(tmp_path / "a.npz", {"x": rng.normal(size=64)})
        expected = read_digest(path)
        _flip_bytes(path)
        with pytest.raises(CheckpointCorruptError) as excinfo:
            load_arrays(path)
        # The typed error names the artifact and the digest it should
        # have had — everything quarantine's reason.json needs.
        assert str(path) in str(excinfo.value)
        assert excinfo.value.path == str(path)
        assert excinfo.value.expected == expected

    def test_truncated_file_raises_typed_error(self, tmp_path, rng):
        path = save_arrays(tmp_path / "a.npz", {"x": rng.normal(size=64)})
        with open(path, "r+b") as handle:
            handle.truncate(os.path.getsize(path) // 2)
        with pytest.raises(CheckpointCorruptError):
            load_arrays(path)

    def test_corrupt_model_checkpoint_raises_typed_error(self, tmp_path, rng):
        model = SmallConvNet(num_classes=2, width=4, rng=rng)
        path = save_model(model, tmp_path / "model.npz")
        _flip_bytes(path)
        clone = SmallConvNet(num_classes=2, width=4, rng=rng)
        with pytest.raises(CheckpointCorruptError):
            load_model(clone, path)


class TestDatasetCheckpoint:
    def test_roundtrip(self, tmp_path, rng):
        ds = ArrayDataset(rng.random((6, 3, 4, 4)), rng.integers(0, 2, 6))
        path = tmp_path / "ds.npz"
        save_dataset(path, ds)
        loaded = load_dataset(path)
        np.testing.assert_array_equal(loaded.images, ds.images)
        np.testing.assert_array_equal(loaded.labels, ds.labels)
