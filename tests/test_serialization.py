"""Tests for model/embedding/dataset checkpointing."""

import numpy as np
import pytest

from repro.data import ArrayDataset
from repro.nn import SmallConvNet, resnet8
from repro.tensor import Tensor
from repro.utils import (
    load_dataset,
    load_embeddings,
    load_model,
    save_dataset,
    save_embeddings,
    save_model,
)


@pytest.fixture
def rng():
    return np.random.default_rng(131)


class TestModelCheckpoint:
    def test_roundtrip_identical_outputs(self, tmp_path, rng):
        model = SmallConvNet(num_classes=4, width=4, rng=rng)
        x = Tensor(rng.normal(size=(3, 3, 8, 8)))
        model.eval()
        before = model(x).data.copy()

        path = tmp_path / "model.npz"
        save_model(model, path)
        clone = SmallConvNet(num_classes=4, width=4, rng=np.random.default_rng(9))
        load_model(clone, path)
        clone.eval()
        np.testing.assert_allclose(clone(x).data, before, atol=1e-12)

    def test_batchnorm_buffers_preserved(self, tmp_path, rng):
        model = SmallConvNet(num_classes=2, width=4, rng=rng)
        model.bn1.running_mean[...] = 7.0
        path = tmp_path / "model.npz"
        save_model(model, path)
        clone = SmallConvNet(num_classes=2, width=4, rng=rng)
        load_model(clone, path)
        np.testing.assert_allclose(clone.bn1.running_mean, 7.0)

    def test_resnet_roundtrip(self, tmp_path, rng):
        model = resnet8(num_classes=3, width_multiplier=0.25, rng=rng)
        path = tmp_path / "resnet.npz"
        save_model(model, path)
        clone = resnet8(
            num_classes=3, width_multiplier=0.25, rng=np.random.default_rng(5)
        )
        load_model(clone, path)
        for (name_a, p_a), (name_b, p_b) in zip(
            model.named_parameters(), clone.named_parameters()
        ):
            assert name_a == name_b
            np.testing.assert_array_equal(p_a.data, p_b.data)

    def test_incompatible_model_raises(self, tmp_path, rng):
        model = SmallConvNet(num_classes=4, width=4, rng=rng)
        path = tmp_path / "model.npz"
        save_model(model, path)
        other = SmallConvNet(num_classes=4, width=8, rng=rng)
        with pytest.raises(ValueError):
            load_model(other, path)


class TestEmbeddingCheckpoint:
    def test_roundtrip(self, tmp_path, rng):
        emb = rng.normal(size=(20, 8))
        labels = rng.integers(0, 3, 20)
        path = tmp_path / "emb.npz"
        save_embeddings(path, emb, labels)
        emb2, labels2 = load_embeddings(path)
        np.testing.assert_array_equal(emb2, emb)
        np.testing.assert_array_equal(labels2, labels)

    def test_misaligned_raises(self, tmp_path, rng):
        with pytest.raises(ValueError):
            save_embeddings(tmp_path / "x.npz", rng.normal(size=(5, 2)),
                            np.zeros(4))


class TestDatasetCheckpoint:
    def test_roundtrip(self, tmp_path, rng):
        ds = ArrayDataset(rng.random((6, 3, 4, 4)), rng.integers(0, 2, 6))
        path = tmp_path / "ds.npz"
        save_dataset(path, ds)
        loaded = load_dataset(path)
        np.testing.assert_array_equal(loaded.images, ds.images)
        np.testing.assert_array_equal(loaded.labels, ds.labels)
