"""Tests for the generalization-gap measure (Algorithm 1)."""

import numpy as np
import pytest

from repro.core.gap import (
    class_feature_ranges,
    feature_deviation,
    generalization_gap,
    range_excess,
    tp_fp_gap,
)


@pytest.fixture
def rng():
    return np.random.default_rng(71)


class TestFeatureRanges:
    def test_min_max_per_class(self):
        f = np.array([[0.0, 5.0], [1.0, 3.0], [10.0, -1.0]])
        y = np.array([0, 0, 1])
        ranges = class_feature_ranges(f, y, num_classes=2)
        np.testing.assert_allclose(ranges[0, :, 0], [0.0, 3.0])  # mins
        np.testing.assert_allclose(ranges[0, :, 1], [1.0, 5.0])  # maxs
        np.testing.assert_allclose(ranges[1, :, 0], [10.0, -1.0])

    def test_missing_class_nan(self):
        ranges = class_feature_ranges(np.zeros((2, 3)), np.zeros(2, int), 4)
        assert np.isnan(ranges[1]).all()

    def test_singleton_class_degenerate_range(self):
        f = np.array([[2.0, 7.0]])
        ranges = class_feature_ranges(f, np.array([0]), 1)
        np.testing.assert_allclose(ranges[0, :, 0], ranges[0, :, 1])


class TestRangeExcess:
    def test_zero_when_test_inside_train(self):
        train = np.zeros((1, 2, 2))
        train[0, :, 0] = [-1.0, -1.0]
        train[0, :, 1] = [1.0, 1.0]
        test = np.zeros((1, 2, 2))
        test[0, :, 0] = [-0.5, 0.0]
        test[0, :, 1] = [0.5, 0.9]
        np.testing.assert_allclose(range_excess(train, test), [0.0])

    def test_counts_overshoot_both_ends(self):
        train = np.zeros((1, 1, 2))
        train[0, 0] = [-1.0, 1.0]
        test = np.zeros((1, 1, 2))
        test[0, 0] = [-2.0, 3.0]
        # undershoot 1 + overshoot 2 = 3
        np.testing.assert_allclose(range_excess(train, test), [3.0])

    def test_floor_never_negative(self):
        """Test range strictly inside train range must not reduce the gap."""
        train = np.zeros((1, 1, 2))
        train[0, 0] = [-10.0, 10.0]
        test = np.zeros((1, 1, 2))
        test[0, 0] = [-0.1, 0.1]
        assert range_excess(train, test)[0] == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            range_excess(np.zeros((1, 2, 2)), np.zeros((2, 2, 2)))


class TestGeneralizationGap:
    def test_identical_distributions_small_gap(self, rng):
        f = rng.normal(size=(2000, 8))
        y = rng.integers(0, 2, 2000)
        gap = generalization_gap(f[:1000], y[:1000], f[1000:], y[1000:])
        assert gap["mean"] < 0.5

    def test_undersampled_class_has_larger_gap(self, rng):
        """The paper's core empirical claim, in its purest form: with
        i.i.d. sampling, the class with fewer train samples exhibits a
        larger train/test range gap."""
        dim = 16
        test_f = rng.normal(size=(1000, dim))
        test_y = np.array([0, 1] * 500)
        train_major = rng.normal(size=(500, dim))
        train_minor = rng.normal(size=(5, dim))
        train_f = np.concatenate([train_major, train_minor])
        train_y = np.array([0] * 500 + [1] * 5)
        gap = generalization_gap(train_f, train_y, test_f, test_y)
        assert gap["per_class"][1] > gap["per_class"][0]

    def test_gap_decreases_with_more_samples(self, rng):
        dim = 8
        test_f = rng.normal(size=(2000, dim))
        test_y = np.zeros(2000, int)
        gaps = []
        for n in (5, 50, 500):
            train_f = rng.normal(size=(n, dim))
            gaps.append(
                generalization_gap(
                    train_f, np.zeros(n, int), test_f, test_y
                )["mean"]
            )
        assert gaps[0] > gaps[1] > gaps[2]

    def test_returns_ranges(self, rng):
        f = rng.normal(size=(40, 3))
        y = rng.integers(0, 2, 40)
        gap = generalization_gap(f[:20], y[:20], f[20:], y[20:], num_classes=2)
        assert gap["train_ranges"].shape == (2, 3, 2)
        assert gap["test_ranges"].shape == (2, 3, 2)

    def test_class_missing_from_test_nan_excluded(self, rng):
        train_f = rng.normal(size=(20, 4))
        train_y = np.array([0] * 10 + [1] * 10)
        test_f = rng.normal(size=(10, 4))
        test_y = np.zeros(10, int)
        gap = generalization_gap(train_f, train_y, test_f, test_y, num_classes=2)
        assert np.isnan(gap["per_class"][1])
        assert np.isfinite(gap["mean"])

    def test_smote_does_not_change_gap_eos_does(self, rng):
        """Range-level restatement of Figure 3: SMOTE leaves the train
        ranges unchanged, EOS expands them and shrinks the gap."""
        from repro.core import EOS
        from repro.sampling import SMOTE

        train_f = np.concatenate(
            [rng.normal(0, 1, (200, 6)), rng.normal(1.0, 0.4, (8, 6))]
        )
        train_y = np.array([0] * 200 + [1] * 8)
        test_f = np.concatenate(
            [rng.normal(0, 1, (200, 6)), rng.normal(1.0, 1.0, (200, 6))]
        )
        test_y = np.array([0] * 200 + [1] * 200)

        base = generalization_gap(train_f, train_y, test_f, test_y)
        sm_f, sm_y = SMOTE(random_state=0).fit_resample(train_f, train_y)
        sm = generalization_gap(sm_f, sm_y, test_f, test_y)
        eos_f, eos_y = EOS(k_neighbors=20, random_state=0).fit_resample(
            train_f, train_y
        )
        eos = generalization_gap(eos_f, eos_y, test_f, test_y)

        assert sm["per_class"][1] == pytest.approx(base["per_class"][1])
        assert eos["per_class"][1] < base["per_class"][1]


class TestTpFpGap:
    def test_fp_gap_larger_when_errors_are_outliers(self, rng):
        dim = 8
        train_f = rng.normal(size=(300, dim))
        train_y = rng.integers(0, 2, 300)
        # TPs drawn from the train distribution; FPs are far outliers.
        tp_f = rng.normal(size=(100, dim))
        fp_f = rng.normal(0, 3.0, size=(30, dim))
        test_f = np.concatenate([tp_f, fp_f])
        test_y = np.concatenate([rng.integers(0, 2, 100), np.zeros(30, int)])
        preds = test_y.copy()
        preds[100:] = 1  # the outliers are mispredicted
        out = tp_fp_gap(train_f, train_y, test_f, test_y, preds)
        assert out["fp"] > out["tp"]
        assert out["ratio"] > 1.0

    def test_all_correct_fp_nan(self, rng):
        f = rng.normal(size=(40, 4))
        y = rng.integers(0, 2, 40)
        out = tp_fp_gap(f[:20], y[:20], f[20:], y[20:], y[20:])
        assert np.isnan(out["fp"])


class TestFeatureDeviation:
    def test_zero_for_identical_means(self):
        f = np.tile(np.array([[1.0, 2.0]]), (10, 1))
        y = np.zeros(10, int)
        out = feature_deviation(f[:5], y[:5], f[5:], y[5:])
        assert out["mean"] == pytest.approx(0.0)

    def test_squared_euclidean(self):
        train_f = np.array([[0.0, 0.0]])
        test_f = np.array([[3.0, 4.0]])
        out = feature_deviation(train_f, [0], test_f, [0])
        assert out["per_class"][0] == pytest.approx(25.0)

    def test_correlates_with_range_gap_direction(self, rng):
        """Both measures should flag the undersampled class as worse."""
        test_f = rng.normal(size=(600, 6))
        test_y = np.array([0, 1] * 300)
        train_f = np.concatenate(
            [rng.normal(size=(300, 6)), rng.normal(size=(4, 6))]
        )
        train_y = np.array([0] * 300 + [1] * 4)
        dev = feature_deviation(train_f, train_y, test_f, test_y)
        assert dev["per_class"][1] > dev["per_class"][0]
