"""Tests for the linear SVM substrate."""

import numpy as np
import pytest

from repro.svm import LinearSVM


@pytest.fixture
def rng():
    return np.random.default_rng(41)


def blobs(rng, counts=(50, 50, 50), spread=0.5):
    centers = np.array([[0.0, 0.0], [4.0, 0.0], [0.0, 4.0]])
    xs, ys = [], []
    for c, n in enumerate(counts):
        xs.append(rng.normal(centers[c], spread, size=(n, 2)))
        ys.append(np.full(n, c))
    return np.concatenate(xs), np.concatenate(ys)


class TestLinearSVM:
    def test_separable_blobs_high_accuracy(self, rng):
        x, y = blobs(rng)
        svm = LinearSVM(epochs=50).fit(x, y)
        assert svm.score(x, y) > 0.95

    def test_decision_function_shape(self, rng):
        x, y = blobs(rng)
        svm = LinearSVM().fit(x, y)
        assert svm.decision_function(x).shape == (150, 3)

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            LinearSVM().predict(np.zeros((1, 2)))

    def test_generalizes_to_new_points(self, rng):
        x, y = blobs(rng)
        svm = LinearSVM(epochs=50).fit(x, y)
        x_test, y_test = blobs(np.random.default_rng(99))
        assert svm.score(x_test, y_test) > 0.9

    def test_balanced_weighting_helps_minority_recall(self, rng):
        x, y = blobs(rng, counts=(200, 200, 8), spread=1.5)
        plain = LinearSVM(epochs=50, seed=0).fit(x, y)
        balanced = LinearSVM(epochs=50, class_weight="balanced", seed=0).fit(x, y)
        minority = y == 2
        recall_plain = (plain.predict(x[minority]) == 2).mean()
        recall_balanced = (balanced.predict(x[minority]) == 2).mean()
        assert recall_balanced >= recall_plain

    def test_regularization_shrinks_weights(self, rng):
        x, y = blobs(rng)
        w_small = LinearSVM(reg=1e-4, epochs=30).fit(x, y)
        w_large = LinearSVM(reg=1.0, epochs=30).fit(x, y)
        assert np.linalg.norm(w_large.weights) < np.linalg.norm(w_small.weights)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            LinearSVM(reg=-1.0)
        with pytest.raises(ValueError):
            LinearSVM(class_weight="bogus")
        with pytest.raises(ValueError):
            LinearSVM().fit(np.zeros((2, 2, 2)), np.zeros(2))

    def test_deterministic_given_seed(self, rng):
        x, y = blobs(rng)
        a = LinearSVM(seed=7).fit(x, y)
        b = LinearSVM(seed=7).fit(x, y)
        np.testing.assert_array_equal(a.weights, b.weights)
