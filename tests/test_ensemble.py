"""Tests for the balanced head ensemble."""

import numpy as np
import pytest

from repro.core import EOS
from repro.ensemble import BalancedHeadEnsemble
from repro.nn import Linear


@pytest.fixture
def rng():
    return np.random.default_rng(151)


@pytest.fixture
def embeddings(rng):
    """Imbalanced separable embeddings: 100 / 20 / 5."""
    centers = np.zeros((3, 8))
    centers[0, 0] = centers[1, 1] = centers[2, 2] = 2.0
    counts = [100, 20, 5]
    x, y = [], []
    for c, n in enumerate(counts):
        x.append(rng.normal(centers[c], 1.0, size=(n, 8)))
        y += [c] * n
    return np.concatenate(x), np.array(y)


def head_factory(seed=0):
    return Linear(8, 3, rng=np.random.default_rng(seed))


class TestBalancedHeadEnsemble:
    def test_fit_creates_heads(self, embeddings):
        x, y = embeddings
        ens = BalancedHeadEnsemble(head_factory, n_heads=3, epochs=3)
        ens.fit(x, y)
        assert len(ens.heads) == 3
        # Members differ (different balanced views/seeds).
        w0 = ens.heads[0].weight.data
        w1 = ens.heads[1].weight.data
        assert not np.allclose(w0, w1)

    def test_undersample_views_are_balanced(self, embeddings):
        x, y = embeddings
        ens = BalancedHeadEnsemble(head_factory, n_heads=1)
        xv, yv = ens._balanced_view(x, y, seed=0)
        counts = np.bincount(yv)
        assert len(set(counts)) == 1
        assert counts[0] == 5  # smallest class size

    def test_oversample_mode_uses_sampler(self, embeddings):
        x, y = embeddings
        ens = BalancedHeadEnsemble(
            head_factory,
            n_heads=2,
            mode="oversample",
            sampler_factory=lambda seed: EOS(k_neighbors=5, random_state=seed),
            epochs=3,
        )
        xv, yv = ens._balanced_view(x, y, seed=0)
        np.testing.assert_array_equal(np.bincount(yv), [100, 100, 100])
        ens.fit(x, y)
        assert ens.score(x, y) > 0.5

    def test_beats_single_undersampled_head_on_bac(self, embeddings):
        """Variance reduction: the ensemble should at least match a
        single under-bagged head."""
        x, y = embeddings
        single = BalancedHeadEnsemble(head_factory, n_heads=1, epochs=8,
                                      random_state=0).fit(x, y)
        many = BalancedHeadEnsemble(head_factory, n_heads=7, epochs=8,
                                    random_state=0).fit(x, y)
        assert many.score(x, y) >= single.score(x, y) - 0.02

    def test_predict_before_fit_raises(self, embeddings):
        x, _ = embeddings
        with pytest.raises(RuntimeError):
            BalancedHeadEnsemble(head_factory).predict(x)

    def test_logits_are_member_average(self, embeddings):
        x, y = embeddings
        ens = BalancedHeadEnsemble(head_factory, n_heads=2, epochs=1).fit(x, y)
        from repro.tensor import Tensor

        manual = (
            ens.heads[0](Tensor(x)).data + ens.heads[1](Tensor(x)).data
        ) / 2
        np.testing.assert_allclose(ens.predict_logits(x), manual, rtol=1e-5, atol=1e-6)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            BalancedHeadEnsemble(head_factory, n_heads=0)
        with pytest.raises(ValueError):
            BalancedHeadEnsemble(head_factory, mode="bagging")
        with pytest.raises(ValueError):
            BalancedHeadEnsemble(head_factory, mode="oversample")

    def test_deterministic_given_seed(self, embeddings):
        x, y = embeddings
        a = BalancedHeadEnsemble(head_factory, n_heads=2, epochs=2,
                                 random_state=7).fit(x, y)
        b = BalancedHeadEnsemble(head_factory, n_heads=2, epochs=2,
                                 random_state=7).fit(x, y)
        np.testing.assert_allclose(a.predict_logits(x), b.predict_logits(x))
