"""Tests for repro.telemetry: tracer round-trips, metrics accuracy on a
known-size fine-tune, the no-op overhead guard (telemetry off must be
allocation-free and byte-identical), RunResult backward compatibility,
the unified sampler API, the tensor-op profiler, and the `repro-trace`
CLI."""

import json

import numpy as np
import pytest

from repro import telemetry
from repro.telemetry import (
    MetricsRegistry,
    NullMetricsRegistry,
    NullTracer,
    Tracer,
    get_metrics,
    get_tracer,
    load_trace,
    profile_ops,
    render_trace_report,
    set_metrics,
    set_tracer,
    summarize_trace,
)


@pytest.fixture(autouse=True)
def _clean_global_state():
    """Every test starts and ends with telemetry uninstalled."""
    set_tracer(None)
    set_metrics(None)
    yield
    set_tracer(None)
    set_metrics(None)


class FakeClock:
    """Deterministic clock: each read advances by ``step`` seconds."""

    def __init__(self, step=1.0):
        self.now = 0.0
        self.step = step

    def __call__(self):
        value = self.now
        self.now += self.step
        return value


@pytest.fixture
def imbalanced():
    rng = np.random.default_rng(7)
    x = np.concatenate(
        [rng.normal(0.0, 0.5, size=(40, 3)), rng.normal(5.0, 0.5, size=(12, 3))]
    )
    y = np.array([0] * 40 + [1] * 12)
    return x, y


# ----------------------------------------------------------------------
# Tracer core semantics
# ----------------------------------------------------------------------
class TestTracerCore:
    def test_nested_spans_record_depth_and_parent(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("outer"):
            with tracer.span("inner", k=1):
                pass
        inner, outer = tracer.records
        assert inner["name"] == "inner" and inner["depth"] == 1
        assert inner["parent"] == "outer" and inner["attrs"] == {"k": 1}
        assert outer["name"] == "outer" and outer["depth"] == 0
        assert outer["parent"] is None
        assert outer["dur"] > inner["dur"] > 0

    def test_span_set_merges_attrs(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("cell", cell="t2/a") as span:
            span.set(outcome="done", attempts=1)
        record = tracer.records[0]
        assert record["attrs"] == {
            "cell": "t2/a", "outcome": "done", "attempts": 1,
        }

    def test_exception_stamps_error_attr(self):
        tracer = Tracer(clock=FakeClock())
        with pytest.raises(RuntimeError):
            with tracer.span("phase1"):
                raise RuntimeError("boom")
        assert tracer.records[0]["attrs"]["error"] == "RuntimeError"

    def test_events_are_instantaneous_markers(self):
        tracer = Tracer(clock=FakeClock())
        tracer.event("divergence", epoch=3, batch=17)
        record = tracer.records[0]
        assert record["type"] == "event" and record["name"] == "divergence"
        assert record["attrs"] == {"epoch": 3, "batch": 17}

    def test_flush_closes_dangling_spans(self):
        tracer = Tracer(clock=FakeClock())
        tracer.span("orphan").__enter__()
        records = tracer.flush()
        orphan = [r for r in records if r.get("name") == "orphan"][0]
        assert orphan["attrs"]["unclosed"] is True
        assert records[-1]["type"] == "metrics"


# ----------------------------------------------------------------------
# Satellite: trace round-trip through a JSONL file
# ----------------------------------------------------------------------
class TestTraceRoundTrip:
    def test_session_flushes_jsonl_that_summarizes(self, tmp_path):
        out = tmp_path / "trace.jsonl"
        with telemetry.session(trace_out=str(out)) as tracer:
            with tracer.span("phase1", loss="ce"):
                with tracer.span("train.epoch", epoch=0):
                    pass
            with tracer.span(
                "sampler.fit_resample", sampler="SMOTE", n_synthetic=38
            ):
                pass
            with tracer.span("cell", cell="t2/a") as span:
                span.set(outcome="done", attempts=2)
            tracer.event("divergence", epoch=1)
            get_metrics().counter("cache.hits").inc(3)

        # Every line is one JSON object; the loader reproduces the
        # in-memory record list exactly.
        lines = out.read_text().strip().splitlines()
        assert [json.loads(line) for line in lines] == telemetry.load_trace(
            str(out)
        )
        records = load_trace(str(out))
        assert len(records) == len(lines)

        summary = summarize_trace(str(out))
        assert summary["n_spans"] == 4 and summary["n_events"] == 1
        assert summary["phases"]["phase1"]["count"] == 1
        assert summary["phases"]["phase2"]["count"] == 1
        assert summary["cells"] == [{
            "cell": "t2/a",
            "seconds": summary["cells"][0]["seconds"],
            "outcome": "done",
            "attempts": 2,
        }]
        assert summary["samplers"]["SMOTE"]["calls"] == 1
        assert summary["samplers"]["SMOTE"]["synthetic"] == 38
        assert summary["counters"] == {"cache.hits": 3}

    def test_session_restores_previous_instruments(self):
        outer_tracer = Tracer()
        set_tracer(outer_tracer)
        set_metrics(MetricsRegistry())
        with telemetry.session() as inner:
            assert get_tracer() is inner
            assert inner is not outer_tracer
        assert get_tracer() is outer_tracer

    def test_nested_sampler_spans_not_double_counted(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("sampler.fit_resample", sampler="SMOTEENN"):
            with tracer.span("sampler.fit_resample", sampler="SMOTE"):
                pass
        spans = [r for r in tracer.records if r["type"] == "span"]
        phases = summarize_trace(spans)["phases"]
        assert phases["phase2"]["count"] == 1

    def test_corrupt_trace_lines_are_skipped_and_counted(self, tmp_path):
        out = tmp_path / "trace.jsonl"
        with telemetry.session(trace_out=str(out)) as tracer:
            with tracer.span("phase1"):
                pass
            tracer.event("divergence", epoch=1)
        # A crash mid-flush tears the file: garbage line, a non-object
        # line, and a truncated final record.
        lines = out.read_text().splitlines()
        lines.insert(1, "\x00\x00 not json \x00")
        lines.insert(2, '"a bare string, not a record"')
        lines[-1] = lines[-1][: len(lines[-1]) // 2]
        out.write_text("\n".join(lines))

        seen = []
        records = load_trace(str(out), on_corrupt=lambda n, line: seen.append(n))
        assert seen == [2, 3, len(lines)]
        assert all(isinstance(r, dict) for r in records)

        summary = summarize_trace(str(out))
        assert summary["corrupt_lines"] == 3
        assert summary["n_spans"] == 1 and summary["n_events"] == 1
        report = render_trace_report(summary)
        assert "WARNING: skipped 3 corrupt/truncated trace line(s)" in report

    def test_clean_trace_reports_no_corruption(self, tmp_path):
        out = tmp_path / "trace.jsonl"
        with telemetry.session(trace_out=str(out)) as tracer:
            with tracer.span("phase1"):
                pass
        summary = summarize_trace(str(out))
        assert summary["corrupt_lines"] == 0
        assert "WARNING" not in render_trace_report(summary)

    def test_serve_events_render_in_report(self):
        tracer = Tracer(clock=FakeClock())
        tracer.event("serve.started", pid=1, socket="s.sock", recovered=2)
        tracer.event("serve.shed", reason="queue_full", client="c", depth=4)
        tracer.event("serve.breaker_opened", kind="fail", signature="boom")
        tracer.event("serve.journal_corrupt", lines=2)
        tracer.event("serve.stopped", reason="SIGTERM", depth=0)
        summary = summarize_trace(tracer.records)
        assert summary["serve"]["shed"] == 1
        assert summary["serve"]["journal_corrupt"] == 2
        assert [e["event"] for e in summary["serve"]["lifecycle"]] == [
            "serve.started", "serve.stopped",
        ]
        report = render_trace_report(summary)
        assert "Serve (daemon lifecycle / admission / breakers):" in report
        assert "1 request(s) shed by admission control" in report
        assert "breaker opened for kind fail: boom" in report
        assert "2 corrupt journal line(s) skipped on replay" in report

    def test_render_report_lists_every_section(self, tmp_path):
        out = tmp_path / "trace.jsonl"
        with telemetry.session(trace_out=str(out)) as tracer:
            with tracer.span("phase1"):
                pass
            get_metrics().counter("cells.done").inc()
            get_metrics().histogram("train.epoch_loss").observe(0.5)
        report = render_trace_report(summarize_trace(str(out)))
        for needle in ("Per-phase wall time", "Spans by name", "Counters",
                       "Histograms"):
            assert needle in report


# ----------------------------------------------------------------------
# Satellite: metrics accuracy on a known-size fine-tune
# ----------------------------------------------------------------------
class TestMetricsAccuracy:
    def test_finetune_counts_match_known_sizes(self):
        from repro.core import finetune_classifier
        from repro.nn import SmallConvNet

        rng = np.random.default_rng(3)
        n, epochs, batch_size = 50, 3, 16
        emb = rng.normal(size=(n, 16))
        labels = rng.integers(0, 3, size=n)
        model = SmallConvNet(num_classes=3, width=4, rng=rng)

        with telemetry.session():
            history = finetune_classifier(
                model, emb, labels, epochs=epochs, batch_size=batch_size,
                rng=np.random.default_rng(0),
            )
            snap = get_metrics().snapshot()

        batches_per_epoch = -(-n // batch_size)  # ceil
        assert snap["counters"]["finetune.batches"] == epochs * batches_per_epoch
        curve = snap["histograms"]["finetune.epoch_loss"]
        assert curve["count"] == epochs
        assert curve["series"] == [record["loss"] for record in history]

    def test_counter_rejects_negative_increments(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("x").inc(-1)

    def test_histogram_summary_statistics(self):
        registry = MetricsRegistry()
        hist = registry.histogram("seconds", series=True)
        for value in (2.0, 1.0, 3.0):
            hist.observe(value)
        summary = hist.summary()
        assert summary["count"] == 3 and summary["sum"] == 6.0
        assert summary["min"] == 1.0 and summary["max"] == 3.0
        assert summary["mean"] == 2.0 and summary["last"] == 3.0
        assert summary["series"] == [2.0, 1.0, 3.0]


# ----------------------------------------------------------------------
# Satellite: no-op overhead guard
# ----------------------------------------------------------------------
class TestNoOpOverhead:
    def test_default_instruments_are_shared_null_singletons(self):
        assert isinstance(get_tracer(), NullTracer)
        assert isinstance(get_metrics(), NullMetricsRegistry)
        assert not telemetry.telemetry_enabled()
        # Disabled calls return shared objects — no per-call allocation.
        tracer = get_tracer()
        assert tracer.span("a") is tracer.span("b", k=1)
        registry = get_metrics()
        assert registry.counter("a") is registry.histogram("b", series=True)
        assert registry.counter("a").inc() == 0
        assert tracer.flush() == []

    def test_disabled_sampler_output_is_byte_identical(self, imbalanced):
        from repro.sampling import SMOTE

        x, y = imbalanced
        x_off, y_off = SMOTE(random_state=0).fit_resample(x, y)
        with telemetry.session():
            x_on, y_on = SMOTE(random_state=0).fit_resample(x, y)
        assert np.array_equal(x_off, x_on)
        assert np.array_equal(y_off, y_on)

    def test_disabled_finetune_history_is_identical(self):
        from repro.core import finetune_classifier
        from repro.nn import SmallConvNet

        emb = np.random.default_rng(5).normal(size=(30, 16))
        labels = np.array([0, 1, 2] * 10)

        def run():
            model = SmallConvNet(
                num_classes=3, width=4, rng=np.random.default_rng(9)
            )
            return finetune_classifier(
                model, emb, labels, epochs=2, batch_size=8,
                rng=np.random.default_rng(0),
            )

        baseline = run()
        with telemetry.session():
            traced = run()
        assert [r["loss"] for r in baseline] == [r["loss"] for r in traced]


# ----------------------------------------------------------------------
# Satellite: RunResult backward compatibility
# ----------------------------------------------------------------------
class TestRunResult:
    def test_dict_consumers_see_original_keys(self):
        from repro.experiments import RunResult

        out = RunResult({"results": {"a": {"acc": 0.9}}, "report": "table"})
        assert out["report"] == "table"
        assert out["results"]["a"]["acc"] == 0.9
        assert "results" in out and "report" in out
        assert set(dict(out)) == {"results", "report", "telemetry", "degraded"}
        assert len(out) == 4

    def test_structured_fields(self):
        from repro.experiments import RunResult

        out = RunResult({"results": {}, "report": "r"}, telemetry={"seconds": 1.0})
        assert out.report == "r"
        assert out.results == {}
        assert out.telemetry == {"seconds": 1.0}
        assert out.degraded == []

    def test_degraded_lists_cell_failures(self):
        from repro.experiments import RunResult
        from repro.resilience import CellFailure

        out = RunResult({
            "results": {
                "ok": {"acc": 0.9},
                "bad": CellFailure("diverged", "DivergenceError", attempts=3),
            },
            "report": "",
        })
        assert out.degraded == ["bad"]
        assert "degraded=1" in repr(out)

    def test_traced_runner_wraps_plain_dicts(self):
        from repro.experiments import traced_runner

        @traced_runner("stub")
        def run_stub(value):
            return {"results": {}, "report": "stub:%d" % value}

        out = run_stub(7)
        assert out["report"] == "stub:7"
        assert out.telemetry["runner"] == "stub"
        assert out.telemetry["enabled"] is False
        assert out.telemetry["seconds"] >= 0.0
        assert "metrics" not in out.telemetry

        with telemetry.session() as tracer:
            traced = run_stub(8)
            assert "metrics" in traced.telemetry
        spans = [r for r in tracer.records if r.get("name") == "runner"]
        assert spans and spans[0]["attrs"]["runner"] == "stub"

    def test_real_runners_are_all_traced(self):
        import repro.experiments as experiments
        from repro.experiments import runners

        names = [n for n in experiments.__all__ if n.startswith("run_")
                 and n != "run_seeds"]
        assert len(names) == 12
        for name in names:
            fn = getattr(runners, name)
            assert hasattr(fn, "__wrapped__"), name  # traced_runner-decorated


# ----------------------------------------------------------------------
# Satellite: unified sampler API
# ----------------------------------------------------------------------
def _all_sampler_classes():
    from repro.core import EOS
    from repro.sampling import (
        ADASYN,
        CCR,
        SMOTE,
        SMOTEENN,
        SWIM,
        BalancedSVMSampler,
        BorderlineSMOTE,
        EditedNearestNeighbors,
        RadialBasedOversampler,
        RandomOverSampler,
        RandomUnderSampler,
        Remix,
        SMOTETomek,
        TomekLinks,
    )

    return [
        RandomOverSampler, RandomUnderSampler, SMOTE, BorderlineSMOTE,
        ADASYN, BalancedSVMSampler, Remix, RadialBasedOversampler, CCR,
        SWIM, TomekLinks, EditedNearestNeighbors, SMOTEENN, SMOTETomek,
        EOS,
    ]


class TestUnifiedSamplerAPI:
    @pytest.mark.parametrize(
        "cls", _all_sampler_classes(), ids=lambda c: c.__name__
    )
    def test_get_params_reconstructs_equivalent_sampler(self, cls, imbalanced):
        sampler = cls()
        params = sampler.get_params()
        assert isinstance(params, dict)
        clone = cls(**params)
        assert clone.get_params() == params
        x, y = imbalanced
        xa, ya = sampler.fit_resample(x, y)
        xb, yb = clone.fit_resample(x, y)
        assert np.array_equal(xa, xb) and np.array_equal(ya, yb)

    @pytest.mark.parametrize(
        "cls", _all_sampler_classes(), ids=lambda c: c.__name__
    )
    def test_repr_names_class_and_params(self, cls):
        sampler = cls()
        text = repr(sampler)
        assert text.startswith(cls.__name__ + "(")
        for key in sampler.get_params():
            assert key + "=" in text

    def test_fit_resample_emits_span_with_class_histogram(self, imbalanced):
        from repro.sampling import SMOTE

        x, y = imbalanced
        with telemetry.session() as tracer:
            SMOTE(random_state=0).fit_resample(x, y)
            snap = get_metrics().snapshot()
        spans = [
            r for r in tracer.records
            if r.get("name") == "sampler.fit_resample"
        ]
        assert len(spans) == 1
        attrs = spans[0]["attrs"]
        assert attrs["sampler"] == "SMOTE"
        assert attrs["n_in"] == 52 and attrs["n_out"] == 80
        assert attrs["n_synthetic"] == 28
        assert attrs["classes_in"] == {0: 40, 1: 12}
        assert attrs["classes_out"] == {0: 40, 1: 40}
        assert snap["counters"]["sampler.synthetic.class_1"] == 28
        assert snap["counters"]["sampler.fit_resample.calls"] == 1
        assert snap["histograms"]["sampler.SMOTE.seconds"]["count"] == 1

    def test_template_validates_before_delegating(self):
        from repro.sampling import SMOTE

        with pytest.raises(ValueError):
            SMOTE().fit_resample(np.zeros((3, 2)), np.zeros(2))


# ----------------------------------------------------------------------
# Opt-in tensor-op profiler
# ----------------------------------------------------------------------
class TestProfiler:
    def test_collects_forward_backward_and_layer_stats(self):
        from repro.nn import Linear
        from repro.tensor import Tensor

        layer = Linear(4, 2, rng=np.random.default_rng(0))
        x = Tensor(np.random.default_rng(1).normal(size=(3, 4)))
        assert not telemetry.is_profiling()
        with profile_ops() as prof:
            assert telemetry.is_profiling()
            loss = layer(x).sum()
            loss.backward()
        assert not telemetry.is_profiling()
        stats = prof.stats()
        assert sum(stats["forward_ops"].values()) > 0
        assert stats["layers"]["Linear"]["count"] == 1
        assert stats["layers"]["Linear"]["seconds"] >= 0.0
        assert all(e["count"] >= 1 for e in stats["backward"].values())

    def test_profile_lands_in_trace_as_event(self):
        from repro.tensor import Tensor

        with telemetry.session() as tracer:
            with profile_ops():
                t = Tensor(np.ones((2, 2)), requires_grad=True)
                (t * 2.0).sum().backward()
        events = [r for r in tracer.records if r.get("type") == "event"]
        assert [e["name"] for e in events] == ["profile"]
        assert events[0]["attrs"]["forward_ops"]

    def test_disabled_profiler_leaves_tensor_ops_untouched(self):
        from repro.tensor import Tensor

        t = Tensor(np.ones((2, 2)), requires_grad=True)
        out = (t * 3.0).sum()
        out.backward()
        assert profile_ops.stats() is not None  # stats readable anytime


# ----------------------------------------------------------------------
# repro-trace CLI
# ----------------------------------------------------------------------
class TestTraceCLI:
    def test_summarizes_trace_file(self, tmp_path, capsys):
        from repro.telemetry.__main__ import main as trace_main

        out = tmp_path / "trace.jsonl"
        with telemetry.session(trace_out=str(out)) as tracer:
            with tracer.span("phase1"):
                pass
        assert trace_main([str(out)]) == 0
        text = capsys.readouterr().out
        assert "span(s)" in text and "phase1" in text

    def test_json_format(self, tmp_path, capsys):
        from repro.telemetry.__main__ import main as trace_main

        out = tmp_path / "trace.jsonl"
        with telemetry.session(trace_out=str(out)) as tracer:
            tracer.event("divergence", epoch=0)
        assert trace_main(["--format", "json", str(out)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["n_events"] == 1

    def test_missing_file_exits_two(self, tmp_path, capsys):
        from repro.telemetry.__main__ import main as trace_main

        assert trace_main([str(tmp_path / "nope.jsonl")]) == 2
