"""Chaos suite for the serve daemon: real processes, real SIGKILLs.

Each test runs ``repro-serve`` (``python -m repro.serve``) as a child
process, crashes or overloads it, and asserts the journaled-queue
contract end to end:

* a daemon SIGKILLed mid-batch loses **nothing it acknowledged** — a
  restarted daemon replays the journal and settles every accepted job
  exactly once, with results byte-identical to a run that never
  crashed;
* an overloaded daemon sheds with structured ``retry_after`` responses
  and accepts **zero** jobs it then fails to finish or replay;
* a torn journal record (crash mid-append) is skipped on replay, not
  fatal.

Deselect locally with ``-m "not chaos"``.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.serve import LoadShedded, ServeClient, job_seed, read_journal
from repro.telemetry import monotonic

pytestmark = pytest.mark.chaos

_ENV = {**os.environ, "PYTHONPATH": "src", "PYTHONUNBUFFERED": "1"}
_REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _start_daemon(tmp_path, *extra):
    """Launch repro-serve as a child; returns (process, client)."""
    socket_path = str(tmp_path / "repro.sock")
    journal_path = str(tmp_path / "journal.jsonl")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.serve", "start",
         "--socket", socket_path, "--journal", journal_path, *extra],
        cwd=_REPO, env=_ENV,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    # Generous per-request timeout: chaos tests share the machine with
    # the rest of the suite, and a loaded box must not flake a submit.
    client = ServeClient(socket_path, client_id="chaos", timeout=30.0)
    deadline = monotonic() + 30.0
    while not client.alive():
        if process.poll() is not None:
            raise AssertionError(
                "daemon exited before coming up:\n%s" % process.stdout.read()
            )
        if monotonic() > deadline:
            process.kill()
            raise AssertionError("daemon never answered status")
        time.sleep(0.05)
    return process, client


def _stop_and_reap(process, client, timeout=60.0):
    """Graceful stop; returns the daemon's exit code."""
    if client.alive():
        try:
            client.stop()
        except OSError:  # repro: noqa[RES002] the daemon may finish stopping between alive() and stop()
            pass
    try:
        process.wait(timeout=timeout)
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=10.0)
    return process.returncode


def _sigkill(process):
    os.kill(process.pid, signal.SIGKILL)
    process.wait(timeout=10.0)
    assert process.returncode == -signal.SIGKILL


def _submit_concurrently(client, jobs, submit=None):
    """Fire one submit per thread; returns [(job_id, outcome), ...].

    ``outcome`` is the ACKed job id or the raised exception.  Threads
    connect while the daemon is busy dispatching, so the whole batch
    lands on the listener backlog and is admitted in one accept pass —
    the shape that actually builds queue depth (a sequential client is
    ACK-throttled to one job per dispatch loop and never can).
    """
    submit = submit or client.submit
    outcomes = [None] * len(jobs)

    def one(index, kind, payload, job_id):
        try:
            outcomes[index] = (job_id, submit(kind, payload, job_id=job_id))
        except Exception as exc:  # recorded for the caller to assert on
            outcomes[index] = (job_id, exc)

    threads = [
        threading.Thread(target=one, args=(i, kind, payload, job_id))
        for i, (kind, payload, job_id) in enumerate(jobs)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60.0)
    assert all(outcome is not None for outcome in outcomes), \
        "a submit thread never finished"
    return outcomes


def _toy_matrix():
    """A small imbalanced dataset as JSON-safe nested lists (no RNG:
    results must be reproducible across the reference and chaos runs)."""
    x, y = [], []
    for label, count in ((0, 24), (1, 10), (2, 5)):
        for i in range(count):
            x.append([
                label * 5.0 + ((7 * i + 13 * d + label) % 19) / 19.0
                for d in range(4)
            ])
            y.append(label)
    return x, y


def _resample_jobs(n=5):
    x, y = _toy_matrix()
    return [
        ("resample",
         {"x": x, "y": y, "sampler": "eos", "k_neighbors": 3},
         "rs-%02d" % i)
        for i in range(n)
    ]


class TestKillAndReplay:
    def test_sigkill_mid_batch_then_replay_is_byte_identical(self, tmp_path):
        # Reference run: the same resample jobs against a daemon that
        # never crashes.  Handlers are pure in (payload,
        # job_seed(job_id)), so these settlements are the ground truth.
        ref_dir = tmp_path / "reference"
        ref_dir.mkdir()
        process, client = _start_daemon(ref_dir)
        reference = {}
        for kind, payload, job_id in _resample_jobs():
            client.submit(kind, payload, job_id=job_id)
            reference[job_id] = client.wait(job_id, timeout=30.0)
        assert all(r["status"] == "done" for r in reference.values())
        assert _stop_and_reap(process, client) == 0

        # Chaos run: occupy the daemon with a sleep job, land the real
        # jobs (plus a 2s sleep "gate") on the backlog so they are all
        # ACKed in one accept pass, then SIGKILL 0.2s later.  The gate
        # cannot have finished, so at least one acknowledged job is
        # guaranteed to die accepted-but-unsettled.
        chaos_dir = tmp_path / "chaos"
        chaos_dir.mkdir()
        process, client = _start_daemon(chaos_dir)
        client.submit("sleep", {"seconds": 1.0}, job_id="warmup-0")
        batch = [("sleep", {"seconds": 2.0}, "gate-0")] + _resample_jobs()
        acks = _submit_concurrently(client, batch)
        assert all(ack == job_id for job_id, ack in acks)
        time.sleep(0.2)
        _sigkill(process)

        stats = read_journal(chaos_dir / "journal.jsonl")
        accepted = [r["job_id"] for r in stats.records
                    if r["type"] == "accepted"]
        assert sorted(accepted) == sorted(
            ["warmup-0", "gate-0"] + [job_id for _, _, job_id in
                                      _resample_jobs()]
        )
        assert not stats.clean_stop

        # Successor on the same journal: every acknowledged job settles
        # exactly once, byte-identical to the crash-free run.
        process, client = _start_daemon(chaos_dir)
        status = client.status()
        assert status["replay"]["clean_stop"] is False
        assert status["replay"]["recovered"] >= 1  # the gate at minimum
        for kind, payload, job_id in _resample_jobs():
            assert client.wait(job_id, timeout=60.0) == reference[job_id]
        assert client.wait("warmup-0", timeout=60.0)["status"] == "done"
        assert client.wait("gate-0", timeout=60.0)["status"] == "done"
        assert client.status()["queue_depth"] == 0
        assert _stop_and_reap(process, client) == 0
        assert read_journal(chaos_dir / "journal.jsonl").clean_stop

    def test_replayed_settlements_are_not_reexecuted(self, tmp_path):
        process, client = _start_daemon(tmp_path)
        client.submit("echo", {"x": 1}, job_id="done-before-crash")
        first = client.wait("done-before-crash", timeout=30.0)
        assert first["result"]["seed"] == job_seed("done-before-crash")
        _sigkill(process)

        process, client = _start_daemon(tmp_path)
        # The settlement rode the journal: served verbatim, with zero
        # replayed (re-pending) jobs.
        assert client.result("done-before-crash") == first
        assert client.status()["replay"]["recovered"] == 0
        assert _stop_and_reap(process, client) == 0


class TestOverloadShedding:
    def test_sheds_with_retry_after_and_honors_every_ack(self, tmp_path):
        process, client = _start_daemon(
            tmp_path, "--max-depth", "2", "--drain-seconds", "60",
        )
        # Occupy the daemon, then land 12 slow submits on the backlog at
        # once: admission accepts until depth hits --max-depth and must
        # shed the rest with a structured retry_after.
        client.submit("sleep", {"seconds": 0.5}, job_id="occupy-0")
        outcomes = _submit_concurrently(client, [
            ("sleep", {"seconds": 0.2}, "load-%02d" % i) for i in range(12)
        ])
        acked = [job_id for job_id, out in outcomes if out == job_id]
        shed = [out for _, out in outcomes if isinstance(out, LoadShedded)]
        unexpected = [out for _, out in outcomes
                      if out not in acked and not isinstance(out, LoadShedded)]
        assert not unexpected
        assert shed, "overload never triggered shedding"
        assert len(acked) + len(shed) == 12
        assert all(s.reason == "queue_full" for s in shed)
        assert all(s.retry_after >= 0.05 for s in shed)

        # Zero accepted jobs go unhonored: every ACK settles, and the
        # journal promised exactly the ACKed set — no shed job left a
        # trace.
        for job_id in acked:
            assert client.wait(job_id, timeout=60.0)["status"] == "done"
        stats = read_journal(tmp_path / "journal.jsonl")
        journaled = {r["job_id"] for r in stats.records
                     if r["type"] == "accepted"}
        assert journaled == {"occupy-0"} | set(acked)
        assert _stop_and_reap(process, client) == 0

    def test_well_behaved_client_backs_off_and_gets_through(self, tmp_path):
        process, client = _start_daemon(
            tmp_path, "--max-depth", "1", "--drain-seconds", "60",
        )
        client.submit("sleep", {"seconds": 0.5}, job_id="occupy-0")
        outcomes = _submit_concurrently(
            client,
            [("sleep", {"seconds": 0.05}, "patient-%02d" % i)
             for i in range(4)],
            submit=lambda kind, payload, job_id: client.submit_with_retry(
                kind, payload, job_id=job_id, max_attempts=100
            ),
        )
        # Depth 1 forces most submits through the retry_after loop, and
        # every one of them eventually lands.
        assert all(out == job_id for job_id, out in outcomes)
        for job_id, _ in outcomes:
            assert client.wait(job_id, timeout=60.0)["status"] == "done"
        assert _stop_and_reap(process, client) == 0


class TestJournalChaos:
    def test_torn_settlement_record_replays_the_job(self, tmp_path):
        # Corrupt the first *done* append: the job completes in life 1
        # but its settlement record is torn mid-write, so life 2 must
        # re-execute it — deterministically, to the same result.
        chaos = json.dumps([
            {"point": "serve.journal", "action": "corrupt",
             "when": {"record": "done"}},
        ])
        process, client = _start_daemon(tmp_path, "--chaos", chaos)
        client.submit("echo", {"x": 1}, job_id="torn-1")
        first = client.wait("torn-1", timeout=30.0)
        assert first["result"]["seed"] == job_seed("torn-1")
        _sigkill(process)

        stats = read_journal(tmp_path / "journal.jsonl")
        assert stats.torn_tail  # the corrupt fault tore the done record
        assert [r["type"] for r in stats.records] == ["accepted"]

        process, client = _start_daemon(tmp_path)
        assert client.status()["replay"]["recovered"] == 1
        replayed = client.wait("torn-1", timeout=30.0)
        assert replayed["status"] == "done"
        assert replayed["result"] == first["result"]
        assert _stop_and_reap(process, client) == 0

    def test_ack_appended_after_torn_tail_survives_second_replay(
            self, tmp_path):
        # The append-after-torn-tail sequence: life 1 crashes mid-append
        # (torn tail), life 2 ACKs a new job whose fsynced acceptance is
        # the first append after the tear, life 2 is SIGKILLed, and life
        # 3 must still recover that ACKed job.  Without tail repair on
        # reopen, life 2's acceptance record fuses onto the partial line,
        # fails checksum on life 3's replay, and the promised job
        # silently vanishes.
        journal_path = tmp_path / "journal.jsonl"
        process, client = _start_daemon(tmp_path)
        client.submit("echo", {"x": 1}, job_id="pre-tear")
        assert client.wait("pre-tear", timeout=30.0)["status"] == "done"
        _sigkill(process)
        # Tear the tail the way a crash mid-append does: a partial
        # record with no trailing newline.
        with open(journal_path, "a", encoding="utf-8") as handle:  # repro: noqa[RES001,SRV002] deliberately tearing the journal tail: this test simulates the crash shape
            handle.write('{"sha256": "dead", "body": {"type": "acc')
        assert read_journal(journal_path).torn_tail

        process, client = _start_daemon(tmp_path)
        assert client.status()["replay"]["torn_tail"] is True
        assert client.submit(
            "sleep", {"seconds": 2.0}, job_id="acked-after-tear"
        ) == "acked-after-tear"
        _sigkill(process)

        process, client = _start_daemon(tmp_path)
        assert client.status()["replay"]["recovered"] >= 1
        assert client.wait(
            "acked-after-tear", timeout=60.0
        )["status"] == "done"
        assert client.result("pre-tear")["status"] == "done"
        assert _stop_and_reap(process, client) == 0

    def test_kill_fault_at_accept_means_no_promise(self, tmp_path):
        # A daemon killed between admission and the journal write dies
        # before ACKing: the client sees a dead connection, the journal
        # stays empty, and the successor has nothing to replay.
        chaos = json.dumps([
            {"point": "serve.accept", "action": "kill"},
        ])
        process, client = _start_daemon(tmp_path, "--chaos", chaos)
        from repro.serve import ServeError

        with pytest.raises((OSError, ServeError)):
            client.submit("echo", {"x": 1}, job_id="never-acked")
        process.wait(timeout=10.0)
        assert process.returncode != 0

        assert read_journal(tmp_path / "journal.jsonl").records == []
        process, client = _start_daemon(tmp_path)
        assert client.status()["replay"]["recovered"] == 0
        assert client.result("never-acked")["status"] == "not_found"
        assert _stop_and_reap(process, client) == 0


class TestCompactionChaos:
    """SIGKILL inside a journal compaction, at every phase boundary.

    The contract: a crash at *any* point of :meth:`Journal.compact`
    recovers to the same logical state as the uncompacted journal —
    same outcomes, same pending set, byte-identical results.
    """

    @pytest.mark.parametrize("phase", ["begin", "written", "switched",
                                       "unlink"])
    def test_kill_mid_compaction_replays_byte_identical(self, tmp_path,
                                                        phase):
        from repro.serve import default_router

        jobs = [("echo", {"n": i}, "e%d" % i) for i in range(5)]
        expected = {
            job_id: default_router().dispatch(
                {"job_id": job_id, "kind": kind, "payload": payload}
            )
            for kind, payload, job_id in jobs
        }
        chaos = json.dumps([
            {"point": "serve.compact", "action": "kill",
             "when": {"phase": phase}},
        ])
        process, client = _start_daemon(
            tmp_path, "--compact-every", "3", "--chaos", chaos,
        )
        for kind, payload, job_id in jobs:
            try:
                client.submit(kind, payload, job_id=job_id)
            except OSError:
                break  # the daemon died at the fault point mid-batch
        # The third settlement triggers compaction, which dies at
        # ``phase``; everything journaled up to that instant survives.
        process.wait(timeout=60.0)
        assert process.returncode != 0

        stats = read_journal(tmp_path / "journal.jsonl")
        assert not stats.clean_stop

        process, client = _start_daemon(tmp_path)
        for kind, payload, job_id in jobs:
            try:
                client.submit(kind, payload, job_id=job_id)
            except Exception:  # repro: noqa[RES002] duplicate of a settled job answers ok; re-submit shapes vary by crash point
                pass
            settled = client.wait(job_id, timeout=60.0)
            assert settled["status"] == "done"
            assert settled["result"] == expected[job_id]
        assert client.status()["queue_depth"] == 0
        assert _stop_and_reap(process, client) == 0


class TestBoundedJournal:
    def test_compact_every_keeps_journal_bounded_and_replay_exact(
            self, tmp_path):
        # 5×N settlements with --compact-every N: the surviving journal
        # is one checkpoint segment, replay serves every settled result
        # without re-executing a single job.
        process, client = _start_daemon(tmp_path, "--compact-every", "4")
        job_ids = []
        for i in range(20):
            job_id = "b%02d" % i
            client.submit("echo", {"n": i}, job_id=job_id)
            job_ids.append(job_id)
        first_life = {}
        for job_id in job_ids:
            first_life[job_id] = client.wait(job_id, timeout=60.0)
        deadline = monotonic() + 30.0
        while monotonic() < deadline:
            status = client.status()
            if status["counters"]["compactions"] >= 5:
                break
            time.sleep(0.05)
        assert status["counters"]["compactions"] >= 5
        assert status["journal_stats"]["segments"] == 1
        _sigkill(process)

        stats = read_journal(tmp_path / "journal.jsonl")
        # Bounded: O(pending + checkpoint).  All 20 settled and the last
        # compaction folded them, so exactly one checkpoint record (plus
        # any settlement that landed after it) — not 40+ history lines.
        assert stats.segments == 1
        assert len(stats.records) <= 1 + (20 % 4) + 1
        assert stats.records[0]["type"] == "checkpoint"

        process, client = _start_daemon(tmp_path)
        status = client.status()
        assert status["replay"]["recovered"] == 0
        for job_id in job_ids:
            assert client.result(job_id) == first_life[job_id]
        # Served from the checkpoint: the successor executed nothing.
        assert client.status()["counters"]["completed"] == 0
        assert _stop_and_reap(process, client) == 0


class TestPersistentWorkerChaos:
    def test_worker_sigkill_mid_job_matches_serial_reference(self, tmp_path):
        # Reference: the same jobs through a serial (workers=1,
        # fork-per-job) daemon that never crashes.
        ref_dir = tmp_path / "reference"
        ref_dir.mkdir()
        process, client = _start_daemon(ref_dir)
        reference = {}
        for kind, payload, job_id in _resample_jobs():
            client.submit(kind, payload, job_id=job_id)
            reference[job_id] = client.wait(job_id, timeout=60.0)
        assert all(r["status"] == "done" for r in reference.values())
        assert _stop_and_reap(process, client) == 0

        # Chaos: a persistent 4-worker daemon whose worker is killed on
        # rs-00's FIRST dispatch.  The supervisor must respawn it and
        # re-dispatch under the same job_seed — byte-identical results.
        chaos_dir = tmp_path / "chaos"
        chaos_dir.mkdir()
        chaos = json.dumps([
            {"point": "worker.task", "action": "kill",
             "when": {"task": "serve/resample/rs-00", "dispatch": 0}},
        ])
        process, client = _start_daemon(
            chaos_dir, "--persistent", "--workers", "4", "--chaos", chaos,
        )
        for kind, payload, job_id in _resample_jobs():
            client.submit(kind, payload, job_id=job_id)
        for kind, payload, job_id in _resample_jobs():
            assert client.wait(job_id, timeout=60.0) == reference[job_id]

        health = client.health()
        assert health["health"] == "ok"  # one death is not a streak
        workers = health["workers"]
        assert workers["mode"] == "persistent"
        assert workers["deaths"] >= 1, "the injected kill never fired"
        assert workers["respawns"] >= 1
        assert len(workers["workers"]) == 4  # the set was replenished
        assert _stop_and_reap(process, client) == 0

    def test_hung_persistent_worker_is_killed_and_job_retried(self, tmp_path):
        # A worker hung mid-job (dispatch 0 only) is SIGKILLed by the
        # pool watchdog; the retry completes with the right seed.
        chaos = json.dumps([
            {"point": "worker.task", "action": "hang",
             "when": {"task": "serve/echo/stuck-1", "dispatch": 0},
             "seconds": 60.0},
        ])
        process, client = _start_daemon(
            tmp_path, "--persistent", "--workers", "2",
            "--task-deadline", "1.0", "--chaos", chaos,
        )
        client.submit("echo", {"x": 1}, job_id="stuck-1")
        client.submit("echo", {"x": 2}, job_id="fluid-1")
        # The unaffected job finishes immediately; the hung one only
        # after the watchdog kill + re-dispatch.
        assert client.wait("fluid-1", timeout=30.0)["status"] == "done"
        settled = client.wait("stuck-1", timeout=60.0)
        assert settled["status"] == "done"
        assert settled["result"]["seed"] == job_seed("stuck-1")
        assert client.health()["workers"]["deaths"] >= 1
        assert _stop_and_reap(process, client) == 0


class TestGracefulDrain:
    def test_sigterm_drains_and_writes_stop_marker(self, tmp_path):
        process, client = _start_daemon(
            tmp_path, "--drain-seconds", "60",
        )
        for i in range(3):
            client.submit("sleep", {"seconds": 0.05}, job_id="drain-%d" % i)
        os.kill(process.pid, signal.SIGTERM)
        assert process.wait(timeout=60.0) == 0

        stats = read_journal(tmp_path / "journal.jsonl")
        assert stats.clean_stop
        done = {r["job_id"] for r in stats.records if r["type"] == "done"}
        assert done == {"drain-0", "drain-1", "drain-2"}
        assert not os.path.exists(tmp_path / "repro.sock")
