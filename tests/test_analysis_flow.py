"""Tests for the whole-program dataflow analyses (repro.analysis.flow):
FLOW-RNG taint tracking, FLOW-DTYPE abstract interpretation, FLOW-FORK
capture analysis — plus the machinery that rides with them: the --fix
engine, the finding baseline, --jobs fan-out, SARIF/GitHub output, and
the cross-file noqa edge cases."""

import json
import textwrap

import pytest

from repro.analysis import Baseline, LintEngine, apply_fixes, finding_key
from repro.analysis.__main__ import main as lint_main
from repro.analysis.flow import ProjectModel
from repro.analysis.flow.project import module_name_for


def write_tree(root, files):
    """Write ``{relpath: source}`` under root; returns list of paths."""
    paths = []
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
        paths.append(path)
    return paths


def run_flow(root, files, select=("FLOW",)):
    write_tree(root, files)
    report = LintEngine(select=list(select)).run([root])
    return report.findings


def rule_ids(findings):
    return {f.rule for f in findings}


# ----------------------------------------------------------------------
# Project model
# ----------------------------------------------------------------------
class TestProjectModel:
    def test_module_name_walks_init_ancestry(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/sub/__init__.py": "",
                "pkg/sub/mod.py": "x = 1\n",
                "loose.py": "y = 2\n",
            },
        )
        assert module_name_for(tmp_path / "pkg/sub/mod.py") == "pkg.sub.mod"
        assert module_name_for(tmp_path / "pkg/__init__.py") == "pkg"
        assert module_name_for(tmp_path / "loose.py") == "loose"

    def test_canonical_follows_reexports(self, tmp_path):
        paths = write_tree(
            tmp_path,
            {
                "pkg/__init__.py": "from .impl import work\n",
                "pkg/impl.py": "def work():\n    return 1\n",
            },
        )
        sources = {
            str(p): (p.read_text(encoding="utf-8"), None) for p in paths
        }
        project = ProjectModel.build(sources)
        assert project.canonical("pkg.work") == "pkg.impl.work"
        assert project.functions["pkg.impl.work"].name == "work"

    def test_call_graph_links_cross_module_calls(self, tmp_path):
        paths = write_tree(
            tmp_path,
            {
                "util.py": "def helper():\n    return 3\n",
                "app.py": (
                    "from util import helper\n"
                    "def main():\n"
                    "    return helper()\n"
                ),
            },
        )
        sources = {
            str(p): (p.read_text(encoding="utf-8"), None) for p in paths
        }
        project = ProjectModel.build(sources)
        main = project.functions["app.main"]
        callees = {site.callee for site in main.call_sites}
        assert "util.helper" in callees


# ----------------------------------------------------------------------
# FLOW-RNG
# ----------------------------------------------------------------------
class TestFlowRng:
    def test_unseeded_rng_into_fit_resample(self, tmp_path):
        findings = run_flow(
            tmp_path,
            {
                "pipeline.py": """
                import numpy as np

                def run(sampler, X, y):
                    rng = np.random.default_rng()
                    return sampler.fit_resample(X, y, rng)
                """,
            },
        )
        assert any(
            f.rule == "FLOW-RNG" and "fit_resample" in f.message
            for f in findings
        )

    def test_seeded_rng_is_clean(self, tmp_path):
        findings = run_flow(
            tmp_path,
            {
                "pipeline.py": """
                import numpy as np

                def run(sampler, X, y):
                    rng = np.random.default_rng(42)
                    return sampler.fit_resample(X, y, rng)
                """,
            },
        )
        assert "FLOW-RNG" not in rule_ids(findings)

    def test_interprocedural_taint_through_helper_return(self, tmp_path):
        findings = run_flow(
            tmp_path,
            {
                "rngs.py": """
                import numpy as np

                def make_rng():
                    return np.random.default_rng()
                """,
                "train.py": """
                from rngs import make_rng

                def run(sampler, X, y):
                    rng = make_rng()
                    return sampler.fit_resample(X, y, rng)
                """,
            },
        )
        flagged = [f for f in findings if f.rule == "FLOW-RNG"]
        assert flagged
        assert any(f.path.endswith("train.py") for f in flagged)

    def test_tainted_closure_free_variable_into_parallel_map(self, tmp_path):
        findings = run_flow(
            tmp_path,
            {
                "fanout.py": """
                import numpy as np
                from repro.parallel import parallel_map

                def run(items):
                    rng = np.random.default_rng()
                    return parallel_map(lambda item, seed: rng.random(), items)
                """,
            },
        )
        assert any(
            f.rule == "FLOW-RNG" and "parallel_map" in f.message
            for f in findings
        )

    def test_module_global_rng_read_in_fit_resample(self, tmp_path):
        findings = run_flow(
            tmp_path,
            {
                "sampler.py": """
                import numpy as np

                _RNG = np.random.default_rng(7)

                class Sampler:
                    def _fit_resample(self, X, y):
                        return _RNG.permutation(len(X))
                """,
            },
        )
        assert any(
            f.rule == "FLOW-RNG" and "_RNG" in f.message for f in findings
        )


# ----------------------------------------------------------------------
# FLOW-DTYPE
# ----------------------------------------------------------------------
class TestFlowDtype:
    def test_mixed_precision_binop_flagged(self, tmp_path):
        findings = run_flow(
            tmp_path,
            {
                "mathy.py": """
                import numpy as np

                def mix():
                    a = np.zeros(3, dtype=np.float32)
                    b = np.zeros(3, dtype=np.float64)
                    return a + b
                """,
            },
        )
        assert any(
            f.rule == "FLOW-DTYPE" and "float64" in f.message
            for f in findings
        )

    def test_uniform_precision_is_clean(self, tmp_path):
        findings = run_flow(
            tmp_path,
            {
                "mathy.py": """
                import numpy as np

                def same():
                    a = np.zeros(3, dtype=np.float32)
                    b = np.ones(3, dtype=np.float32)
                    return a + b
                """,
            },
        )
        assert "FLOW-DTYPE" not in rule_ids(findings)

    def test_implicit_alloc_into_tensor_flagged_with_fix(self, tmp_path):
        findings = run_flow(
            tmp_path,
            {
                "model.py": """
                import numpy as np
                from repro.tensor import Tensor

                def init(n):
                    w = np.zeros(n)
                    return Tensor(w)
                """,
            },
        )
        flagged = [
            f
            for f in findings
            if f.rule == "FLOW-DTYPE" and "implicit" in f.message
        ]
        assert flagged
        assert flagged[0].fix is not None

    def test_explicit_dtype_alloc_is_clean(self, tmp_path):
        findings = run_flow(
            tmp_path,
            {
                "model.py": """
                import numpy as np
                from repro.tensor import Tensor

                def init(n):
                    w = np.zeros(n, dtype=np.float64)
                    return Tensor(w)
                """,
            },
        )
        assert "FLOW-DTYPE" not in rule_ids(findings)

    def test_interprocedural_dtype_summary(self, tmp_path):
        findings = run_flow(
            tmp_path,
            {
                "alloc.py": """
                import numpy as np

                def f32(n):
                    return np.zeros(n, dtype=np.float32)
                """,
                "mix.py": """
                import numpy as np
                from alloc import f32

                def mix(n):
                    a = f32(n)
                    b = np.ones(n, dtype=np.float64)
                    return a * b
                """,
            },
        )
        flagged = [f for f in findings if f.rule == "FLOW-DTYPE"]
        assert any(f.path.endswith("mix.py") for f in flagged)

    def test_float64_signature_default_flagged(self, tmp_path):
        findings = run_flow(
            tmp_path,
            {
                "hot.py": """
                import numpy as np

                def encode(labels, n, dtype=np.float64):
                    out = np.zeros((len(labels), n), dtype=dtype)
                    return out

                def widen(x, *, out_dtype="float64"):
                    return x.astype(out_dtype)
                """,
            },
        )
        flagged = [
            f
            for f in findings
            if f.rule == "FLOW-DTYPE" and "signature default" in f.message
        ]
        assert len(flagged) == 2
        assert any("'dtype'" in f.message for f in flagged)
        assert any("'out_dtype'" in f.message for f in flagged)

    def test_none_signature_default_is_clean(self, tmp_path):
        findings = run_flow(
            tmp_path,
            {
                "hot.py": """
                import numpy as np

                def encode(labels, n, dtype=None):
                    if dtype is None:
                        dtype = np.float32
                    out = np.zeros((len(labels), n), dtype=dtype)
                    return out
                """,
            },
        )
        assert not any(
            "signature default" in f.message
            for f in findings
            if f.rule == "FLOW-DTYPE"
        )

    def test_signature_default_ignored_outside_hot_modules(self, tmp_path):
        findings = run_flow(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/cold.py": """
                import numpy as np

                def weights(counts, dtype=np.float64):
                    return np.asarray(counts, dtype=dtype)
                """,
            },
        )
        assert not any(
            "signature default" in f.message
            for f in findings
            if f.rule == "FLOW-DTYPE"
        )


# ----------------------------------------------------------------------
# FLOW-FORK
# ----------------------------------------------------------------------
class TestFlowFork:
    def test_captured_file_handle_flagged(self, tmp_path):
        findings = run_flow(
            tmp_path,
            {
                "fanout.py": """
                from repro.parallel import parallel_map

                def run(items):
                    log = open("run.log", "a")
                    return parallel_map(
                        lambda item, seed: log.write(str(item)), items
                    )
                """,
            },
        )
        assert any(
            f.rule == "FLOW-FORK" and "file" in f.message.lower()
            for f in findings
        )

    def test_captured_tracer_flagged(self, tmp_path):
        findings = run_flow(
            tmp_path,
            {
                "fanout.py": """
                from repro.parallel import parallel_map
                from repro.telemetry import Tracer

                def run(items):
                    tracer = Tracer()
                    return parallel_map(
                        lambda item, seed: tracer.span(item), items
                    )
                """,
            },
        )
        assert any(f.rule == "FLOW-FORK" for f in findings)

    def test_mutated_module_global_flagged(self, tmp_path):
        findings = run_flow(
            tmp_path,
            {
                "fanout.py": """
                from repro.parallel import parallel_map

                RESULTS = []

                def run(items):
                    def work(item, seed):
                        RESULTS.append(item)
                        return item
                    return parallel_map(work, items)
                """,
            },
        )
        assert any(
            f.rule == "FLOW-FORK" and "RESULTS" in f.message
            for f in findings
        )

    def test_pure_closure_is_clean(self, tmp_path):
        findings = run_flow(
            tmp_path,
            {
                "fanout.py": """
                from repro.parallel import parallel_map

                def run(items, scale):
                    return parallel_map(
                        lambda item, seed: item * scale, items
                    )
                """,
            },
        )
        assert "FLOW-FORK" not in rule_ids(findings)


# ----------------------------------------------------------------------
# Auto-fix engine
# ----------------------------------------------------------------------
FIXABLE_TREE = {
    "model.py": """
    import numpy as np
    from repro.tensor import Tensor

    def init(n):
        w = np.zeros(n)
        return Tensor(w)
    """,
}


class TestAutoFix:
    def test_fix_rewrites_and_clears_finding(self, tmp_path):
        write_tree(tmp_path, FIXABLE_TREE)
        engine = LintEngine(select=["FLOW"])
        report = engine.run([tmp_path])
        assert report.fixable_count == 1

        result = apply_fixes(report.findings)
        assert result.fixed == 1
        source = (tmp_path / "model.py").read_text(encoding="utf-8")
        assert "np.zeros(n, dtype=np.float64)" in source
        assert not LintEngine(select=["FLOW"]).run([tmp_path]).findings

    def test_fix_is_idempotent_and_byte_stable(self, tmp_path):
        write_tree(tmp_path, FIXABLE_TREE)
        lint_main(["--no-baseline", "--fix", str(tmp_path)])
        first = (tmp_path / "model.py").read_bytes()
        exit_code = lint_main(["--no-baseline", "--fix", str(tmp_path)])
        second = (tmp_path / "model.py").read_bytes()
        assert first == second
        assert exit_code == 0

    def test_rng002_fix_injects_seeded_constructor(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "mod.py": """
                import numpy as np

                rng = np.random.default_rng()
                """,
            },
        )
        engine = LintEngine(select=["RNG002"])
        report = engine.run([tmp_path])
        assert report.fixable_count == 1
        apply_fixes(report.findings)
        source = (tmp_path / "mod.py").read_text(encoding="utf-8")
        assert "fresh_generator()" in source
        assert "from repro._rng import fresh_generator" in source
        assert not LintEngine(select=["RNG002"]).run([tmp_path]).findings

    def test_fix_skips_ambiguous_lines(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "mod.py": """
                import numpy as np

                a, b = np.random.default_rng(), np.random.default_rng()
                """,
            },
        )
        report = LintEngine(select=["RNG002"]).run([tmp_path])
        before = (tmp_path / "mod.py").read_text(encoding="utf-8")
        result = apply_fixes(report.findings)
        assert result.fixed == 0
        assert (tmp_path / "mod.py").read_text(encoding="utf-8") == before


# ----------------------------------------------------------------------
# Baseline
# ----------------------------------------------------------------------
class TestBaseline:
    def test_filter_absorbs_frozen_findings(self, tmp_path):
        write_tree(tmp_path, FIXABLE_TREE)
        engine = LintEngine(select=["FLOW"])
        report = engine.run([tmp_path])
        baseline = Baseline.from_findings(report.findings, tmp_path)
        new, baselined = baseline.filter(report.findings)
        assert not new
        assert len(baselined) == len(report.findings)

    def test_key_is_line_free(self, tmp_path):
        write_tree(tmp_path, FIXABLE_TREE)
        engine = LintEngine(select=["FLOW"])
        finding = engine.run([tmp_path]).findings[0]
        key = finding_key(finding, tmp_path)
        assert str(finding.line) not in key.split("::", 2)[1]
        assert key.startswith("FLOW-DTYPE::model.py::")

    def test_save_load_roundtrip_is_byte_stable(self, tmp_path):
        write_tree(tmp_path, FIXABLE_TREE)
        report = LintEngine(select=["FLOW"]).run([tmp_path])
        baseline_file = tmp_path / ".repro-lint-baseline.json"
        Baseline.from_findings(report.findings, tmp_path).save(baseline_file)
        first = baseline_file.read_bytes()
        Baseline.load(baseline_file).save(baseline_file)
        assert baseline_file.read_bytes() == first

    def test_cli_update_then_clean_then_new_violation_fails(
        self, tmp_path, capsys
    ):
        write_tree(tmp_path, FIXABLE_TREE)
        baseline_file = tmp_path / ".repro-lint-baseline.json"
        assert (
            lint_main(
                [
                    "--update-baseline",
                    "--baseline",
                    str(baseline_file),
                    str(tmp_path / "model.py"),
                ]
            )
            == 0
        )
        assert (
            lint_main(
                [
                    "--baseline",
                    str(baseline_file),
                    str(tmp_path / "model.py"),
                ]
            )
            == 0
        )
        write_tree(
            tmp_path,
            {
                "fresh.py": """
                import numpy as np

                rng = np.random.default_rng()
                """,
            },
        )
        capsys.readouterr()
        assert (
            lint_main(["--baseline", str(baseline_file), str(tmp_path)]) == 1
        )
        assert "RNG002" in capsys.readouterr().out

    def test_bad_baseline_version_exits_two(self, tmp_path, capsys):
        write_tree(tmp_path, FIXABLE_TREE)
        bad = tmp_path / "bad.json"
        bad.write_text('{"version": 99, "entries": []}', encoding="utf-8")
        assert lint_main(["--baseline", str(bad), str(tmp_path)]) == 2


# ----------------------------------------------------------------------
# CLI: --jobs, formats, family select
# ----------------------------------------------------------------------
MIXED_TREE = dict(FIXABLE_TREE)
MIXED_TREE["other.py"] = """
import numpy as np

rng = np.random.default_rng()
"""


class TestCli:
    def test_jobs_output_matches_serial(self, tmp_path, capsys):
        write_tree(tmp_path, MIXED_TREE)
        lint_main(["--no-baseline", str(tmp_path)])
        serial = capsys.readouterr().out
        lint_main(["--no-baseline", "--jobs", "3", str(tmp_path)])
        parallel = capsys.readouterr().out
        assert serial == parallel
        assert "FLOW-DTYPE" in serial and "RNG002" in serial

    def test_sarif_output_is_well_formed(self, tmp_path, capsys):
        write_tree(tmp_path, MIXED_TREE)
        lint_main(["--no-baseline", "--format", "sarif", str(tmp_path)])
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        results = run["results"]
        assert results
        ids = {r["ruleId"] for r in results}
        assert "FLOW-DTYPE" in ids
        loc = results[0]["locations"][0]["physicalLocation"]
        assert loc["region"]["startLine"] >= 1
        declared = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert ids <= declared

    def test_github_output_format(self, tmp_path, capsys):
        write_tree(tmp_path, FIXABLE_TREE)
        lint_main(["--no-baseline", "--format", "github", str(tmp_path)])
        out = capsys.readouterr().out
        assert "::error file=" in out
        assert "title=FLOW-DTYPE" in out

    def test_family_select_flow_only(self, tmp_path):
        write_tree(tmp_path, MIXED_TREE)
        findings = LintEngine(select=["FLOW"]).run([tmp_path]).findings
        assert rule_ids(findings) == {"FLOW-DTYPE"}

    def test_family_select_rng_gets_both_generations(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "mod.py": """
                import numpy as np

                np.random.seed(0)
                rng = np.random.default_rng()
                """,
            },
        )
        findings = LintEngine(select=["RNG"]).run([tmp_path]).findings
        assert {"RNG001", "RNG002"} <= rule_ids(findings)


# ----------------------------------------------------------------------
# Pins for the real FLOW-DTYPE violations fixed on this tree
# ----------------------------------------------------------------------
class TestTreeDtypeFixes:
    """The FLOW-DTYPE pass found implicit float64 allocations in
    repro.nn.init, repro.nn.layers and repro.losses and pinned them to
    explicit dtypes; the float32 migration then retargeted every one of
    those kwargs at ``repro.tensor.default_dtype()``.  These tests
    freeze that contract: allocations must track the switchable default
    under both settings, with no hard-coded float width left behind."""

    def test_init_helpers_track_default_dtype(self):
        import numpy as np

        from repro.nn import init
        from repro.tensor import default_dtype, using_default_dtype

        assert init.zeros((2, 3)).dtype == default_dtype()
        assert init.ones((2, 3)).dtype == default_dtype()
        with using_default_dtype(np.float64):
            assert init.zeros((2, 3)).dtype == np.float64
            assert init.ones((2, 3)).dtype == np.float64

    def test_layer_parameters_track_default_dtype(self):
        import numpy as np

        from repro.nn.layers import BatchNorm1d, Linear
        from repro.tensor import using_default_dtype

        for dt in (np.float32, np.float64):
            with using_default_dtype(dt):
                layer = Linear(4, 2, bias=True, rng=np.random.default_rng(0))
                assert layer.bias.data.dtype == dt
                bn = BatchNorm1d(3)
                assert bn.weight.data.dtype == dt
                assert bn.running_mean.dtype == dt

    def test_fixed_modules_are_flow_dtype_clean(self):
        from pathlib import Path

        import repro

        src = Path(repro.__file__).resolve().parent
        report = LintEngine(select=["FLOW-DTYPE"]).run(
            [src / "nn", src / "losses"]
        )
        assert not report.findings, "\n" + report.format_text()


# ----------------------------------------------------------------------
# noqa edge cases for cross-file findings
# ----------------------------------------------------------------------
class TestCrossFileNoqa:
    TAINT_TREE = {
        "rngs.py": """
        import numpy as np

        def make_rng():
            return np.random.default_rng()  # repro: noqa[RNG002] factory under test
        """,
        "train.py": """
        from rngs import make_rng

        def run(sampler, X, y):
            rng = make_rng()
            return sampler.fit_resample(X, y, rng)
        """,
    }

    def test_noqa_in_source_file_does_not_suppress_sink_finding(
        self, tmp_path
    ):
        """A blanket/targeted noqa at the taint *source* (rngs.py) must
        not silence the FLOW-RNG finding anchored at the *sink* in
        train.py — suppression resolves against the anchored file."""
        write_tree(tmp_path, self.TAINT_TREE)
        report = LintEngine(select=["RNG002", "FLOW-RNG"]).run([tmp_path])
        assert "RNG002" not in rule_ids(report.findings)  # suppressed
        flow = [f for f in report.findings if f.rule == "FLOW-RNG"]
        assert flow and all(f.path.endswith("train.py") for f in flow)

    def test_noqa_on_sink_line_suppresses_flow_finding(self, tmp_path):
        tree = dict(self.TAINT_TREE)
        tree["train.py"] = """
        from rngs import make_rng

        def run(sampler, X, y):
            rng = make_rng()
            return sampler.fit_resample(X, y, rng)  # repro: noqa[FLOW-RNG] exploratory notebook path
        """
        write_tree(tmp_path, tree)
        report = LintEngine(select=["RNG002", "FLOW-RNG"]).run([tmp_path])
        assert "FLOW-RNG" not in rule_ids(report.findings)
        assert any(f.rule == "FLOW-RNG" for f in report.suppressed)

    def test_multi_id_noqa_parses_flow_ids(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "mod.py": """
                import numpy as np

                def run(sampler, X, y):
                    rng = np.random.default_rng()  # repro: noqa[RNG002,FLOW-RNG] seeded upstream
                    return sampler.fit_resample(X, y, rng)
                """,
            },
        )
        report = LintEngine(select=["RNG002", "FLOW-RNG"]).run([tmp_path])
        assert "RNG002" not in rule_ids(report.findings)
        # the sink finding anchors on the fit_resample line, not the
        # noqa'd constructor line, so it survives
        assert "FLOW-RNG" in rule_ids(report.findings)

    def test_blanket_noqa_suppresses_flow_finding_on_its_line(
        self, tmp_path
    ):
        write_tree(
            tmp_path,
            {
                "mod.py": """
                import numpy as np

                def run(sampler, X, y):
                    rng = np.random.default_rng(1)
                    rng = np.random.default_rng()
                    return sampler.fit_resample(X, y, rng)  # repro: noqa
                """,
            },
        )
        report = LintEngine(select=["FLOW-RNG"]).run([tmp_path])
        assert "FLOW-RNG" not in rule_ids(report.findings)
