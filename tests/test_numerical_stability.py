"""Numerical-stability stress tests: extreme inputs must stay finite."""

import numpy as np
import pytest

from repro.losses import AsymmetricLoss, CrossEntropyLoss, FocalLoss, LDAMLoss
from repro.tensor import Tensor, log_softmax, softmax

EXTREME_LOGITS = [
    np.array([[1e3, -1e3, 0.0], [5e2, 5e2, 5e2]]),
    np.array([[-1e3, -1e3, -1e3], [1e-30, 0.0, -1e-30]]),
]


class TestSoftmaxStability:
    @pytest.mark.parametrize("logits", EXTREME_LOGITS)
    def test_softmax_finite(self, logits):
        out = softmax(Tensor(logits)).data
        assert np.all(np.isfinite(out))
        np.testing.assert_allclose(out.sum(axis=1), 1.0)

    @pytest.mark.parametrize("logits", EXTREME_LOGITS)
    def test_log_softmax_finite_gradient(self, logits):
        t = Tensor(logits, requires_grad=True)
        log_softmax(t).sum().backward()
        assert np.all(np.isfinite(t.grad))


class TestLossStability:
    @pytest.mark.parametrize("logits", EXTREME_LOGITS)
    @pytest.mark.parametrize(
        "loss_factory",
        [
            lambda: CrossEntropyLoss(),
            lambda: FocalLoss(gamma=2.0),
            lambda: LDAMLoss([30, 20, 10]),
            lambda: AsymmetricLoss(),
        ],
        ids=["ce", "focal", "ldam", "asl"],
    )
    def test_loss_and_gradient_finite(self, logits, loss_factory):
        t = Tensor(logits, requires_grad=True)
        targets = np.array([0, 2])
        value = loss_factory()(t, targets)
        assert np.isfinite(float(value.data))
        value.backward()
        assert np.all(np.isfinite(t.grad))


class TestTrainingWithExtremeInputs:
    def test_batchnorm_constant_input_finite(self):
        """A constant-channel batch (zero variance) must not blow up."""
        from repro.nn import BatchNorm2d

        bn = BatchNorm2d(2)
        x = Tensor(np.full((4, 2, 3, 3), 7.0), requires_grad=True)
        out = bn(x)
        assert np.all(np.isfinite(out.data))
        out.sum().backward()
        assert np.all(np.isfinite(x.grad))

    def test_sgd_survives_huge_gradient_with_clipping(self):
        from repro.nn import Parameter
        from repro.optim import SGD, clip_grad_norm

        p = Parameter(np.array([1.0]))
        p.grad = np.array([1e12])
        clip_grad_norm([p], max_norm=1.0)
        SGD([p], lr=0.1).step()
        assert np.isfinite(p.data[0])
        assert abs(p.data[0] - 0.9) < 1e-9

    def test_knn_with_identical_points(self):
        from repro.neighbors import KNeighbors

        data = np.zeros((10, 3))
        index = KNeighbors(k=3).fit(data)
        dists, idx = index.query(data, exclude_self=True)
        assert np.all(np.isfinite(dists))

    def test_eos_with_degenerate_features(self):
        """All-identical minority features (zero variance) stay finite."""
        from repro.core import EOS

        rng = np.random.default_rng(0)
        x = np.concatenate([rng.normal(size=(20, 4)), np.ones((3, 4))])
        y = np.array([0] * 20 + [1] * 3)
        xr, yr = EOS(k_neighbors=5, random_state=0).fit_resample(x, y)
        assert np.all(np.isfinite(xr))

    def test_tsne_with_duplicate_points(self):
        from repro.manifold import TSNE

        rng = np.random.default_rng(1)
        x = np.concatenate([rng.normal(size=(10, 3)), np.zeros((5, 3))])
        out = TSNE(n_iter=40, perplexity=4, seed=0).fit_transform(x)
        assert np.all(np.isfinite(out))
