"""Tests for the fast tensor substrate: the switchable default dtype,
the no_grad fast path (bit-identical to the taped path), the scratch
pool, the differentiable astype cast, the float16 promotion telemetry,
and float32-vs-float64 equivalence of the tiny Table-II metrics."""

import numpy as np
import pytest

from repro import telemetry
from repro.tensor import (
    Tensor,
    clear_pool,
    default_dtype,
    no_grad,
    pool_stats,
    set_default_dtype,
    using_default_dtype,
)
from repro.tensor.pool import scratch


# ----------------------------------------------------------------------
# Default dtype switch
# ----------------------------------------------------------------------
class TestDefaultDtype:
    def test_default_is_float32(self):
        assert default_dtype() == np.float32

    def test_set_returns_previous_and_validates(self):
        prev = set_default_dtype(np.float64)
        try:
            assert prev == np.float32
            assert default_dtype() == np.float64
        finally:
            set_default_dtype(prev)
        with pytest.raises(ValueError):
            set_default_dtype(np.int32)
        with pytest.raises(ValueError):
            set_default_dtype(np.float16)

    def test_context_manager_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with using_default_dtype(np.float64):
                assert default_dtype() == np.float64
                raise RuntimeError("boom")
        assert default_dtype() == np.float32

    def test_python_data_lands_on_default(self):
        assert Tensor([1.0, 2.0]).dtype == default_dtype()
        assert Tensor(3.5).dtype == default_dtype()
        with using_default_dtype(np.float64):
            assert Tensor([1.0, 2.0]).dtype == np.float64

    def test_numpy_data_keeps_its_dtype(self):
        assert Tensor(np.zeros(2, dtype=np.float64)).dtype == np.float64
        assert Tensor(np.zeros(2, dtype=np.float32)).dtype == np.float32
        # numpy scalars too: a float64 reduction must not silently narrow.
        assert Tensor(np.float64(1.0)).dtype == np.float64

    def test_reductions_keep_tensor_dtype(self):
        t = Tensor(np.linspace(0.0, 1.0, 5, dtype=np.float64))
        assert t.sum().dtype == np.float64
        assert t.max().dtype == np.float64
        t32 = Tensor([1.0, 2.0])
        assert t32.sum().dtype == np.float32


# ----------------------------------------------------------------------
# float16 silent upcast telemetry
# ----------------------------------------------------------------------
class TestFloat16Promotion:
    def test_float16_widens_to_float32_with_one_event(self):
        from repro.tensor import tensor as tensor_mod

        flag = tensor_mod._FLOAT16_PROMOTED
        try:
            tensor_mod._FLOAT16_PROMOTED = False
            with telemetry.session() as sess:
                t = Tensor(np.zeros((2, 3), dtype=np.float16))
                assert t.dtype == np.float32
                # Second construction must not emit again.
                Tensor(np.zeros(4, dtype=np.float16))
            events = [
                r for r in sess.records
                if r.get("type") == "event"
                and r.get("name") == "dtype.float16_promoted"
            ]
            assert len(events) == 1
            assert events[0]["attrs"]["to"] == "float32"
            assert events[0]["attrs"]["shape"] == [2, 3]
        finally:
            tensor_mod._FLOAT16_PROMOTED = flag


# ----------------------------------------------------------------------
# no_grad fast path
# ----------------------------------------------------------------------
class TestNoGradFastPath:
    def _model(self):
        from repro.nn import SmallConvNet

        model = SmallConvNet(num_classes=5, in_channels=3, width=4,
                             rng=np.random.default_rng(0))
        # Warm the BN running stats, then freeze in eval mode.
        rng = np.random.default_rng(1)
        model(Tensor(rng.normal(size=(8, 3, 12, 12)), dtype=default_dtype()))
        model.eval()
        return model

    def test_no_grad_records_no_tape(self):
        x = Tensor([1.0, -2.0, 3.0], requires_grad=True)
        with no_grad():
            out = ((x * 2.0).relu() + 1.0).sum()
        assert out._backward is None
        assert out._prev == ()
        assert not out.requires_grad

    def test_no_grad_forward_is_bit_identical(self):
        model = self._model()
        rng = np.random.default_rng(2)
        batch = np.asarray(rng.normal(size=(6, 3, 12, 12)),
                           dtype=default_dtype())
        with no_grad():
            fast = model(Tensor(batch)).data
        taped = model(Tensor(batch, requires_grad=True)).data
        assert np.array_equal(fast, taped)

    def test_no_grad_conv_ops_bit_identical(self):
        from repro.tensor import (
            avg_pool2d,
            conv2d,
            conv_transpose2d,
            global_avg_pool2d,
            max_pool2d,
        )

        rng = np.random.default_rng(3)
        x = Tensor(rng.normal(size=(2, 3, 8, 8)), dtype=default_dtype())
        w = Tensor(rng.normal(size=(4, 3, 3, 3)), dtype=default_dtype())
        wt = Tensor(rng.normal(size=(3, 4, 2, 2)), dtype=default_dtype())
        b = Tensor(rng.normal(size=4), dtype=default_dtype())
        xg = Tensor(x.data.copy(), requires_grad=True)
        wg = Tensor(w.data.copy(), requires_grad=True)
        wtg = Tensor(wt.data.copy(), requires_grad=True)
        bg = Tensor(b.data.copy(), requires_grad=True)

        for fast, taped in [
            (lambda: conv2d(x, w, b, stride=2, padding=1),
             lambda: conv2d(xg, wg, bg, stride=2, padding=1)),
            (lambda: conv_transpose2d(x, wt, stride=2),
             lambda: conv_transpose2d(xg, wtg, stride=2)),
            (lambda: max_pool2d(x, 2), lambda: max_pool2d(xg, 2)),
            (lambda: avg_pool2d(x, 2), lambda: avg_pool2d(xg, 2)),
            (lambda: global_avg_pool2d(x), lambda: global_avg_pool2d(xg)),
        ]:
            with no_grad():
                out_fast = fast().data
            out_taped = taped().data
            assert np.array_equal(out_fast, out_taped)

    def test_fused_sequential_matches_unfused(self):
        from repro.nn import Linear, ReLU, Sequential
        from repro.tensor import linear_relu

        rng = np.random.default_rng(4)
        model = Sequential(Linear(6, 4, rng=rng), ReLU())
        x = Tensor(rng.normal(size=(5, 6)), dtype=default_dtype())
        fused = model(x).data
        unfused = model[1](model[0](x)).data
        assert np.array_equal(fused, unfused)
        direct = linear_relu(x, model[0].weight, model[0].bias).data
        assert np.array_equal(fused, direct)


# ----------------------------------------------------------------------
# Differentiable astype
# ----------------------------------------------------------------------
class TestAstypeCast:
    def test_cast_propagates_requires_grad(self):
        x = Tensor(np.ones(3, dtype=np.float64), requires_grad=True)
        y = x.astype(np.float32)
        assert y.requires_grad
        assert y.dtype == np.float32

    def test_cast_backward_restores_source_dtype(self):
        x = Tensor(np.arange(4, dtype=np.float64), requires_grad=True)
        x.astype(np.float32).sum().backward()
        assert x.grad is not None
        assert x.grad.dtype == np.float64
        np.testing.assert_array_equal(x.grad, np.ones(4))

    def test_cast_to_integer_detaches(self):
        x = Tensor(np.ones(3, dtype=np.float64), requires_grad=True)
        y = x.astype(np.int64)
        assert not y.requires_grad

    def test_cast_under_no_grad_detaches(self):
        x = Tensor(np.ones(3, dtype=np.float64), requires_grad=True)
        with no_grad():
            y = x.astype(np.float32)
        assert not y.requires_grad
        assert y._prev == ()


# ----------------------------------------------------------------------
# Scratch pool
# ----------------------------------------------------------------------
class TestScratchPool:
    def setup_method(self):
        clear_pool()

    def teardown_method(self):
        clear_pool()

    def test_same_key_reuses_buffer(self):
        a = scratch("t.site", (4, 4), np.float32)
        b = scratch("t.site", (4, 4), np.float32)
        assert a is b
        stats = pool_stats()
        assert stats["misses"] >= 1 and stats["hits"] >= 1

    def test_distinct_shapes_get_distinct_buffers(self):
        a = scratch("t.site", (4, 4), np.float32)
        b = scratch("t.site", (4, 5), np.float32)
        c = scratch("t.other", (4, 4), np.float32)
        assert a is not b and a is not c

    def test_clear_pool_resets_entries(self):
        scratch("t.site", (2, 2), np.float32)
        assert pool_stats()["entries"] >= 1
        clear_pool()
        assert pool_stats()["entries"] == 0

    def test_lru_eviction_is_bounded(self):
        from repro.tensor.pool import MAX_ENTRIES

        for i in range(MAX_ENTRIES + 8):
            scratch("t.evict", (1, i + 1), np.float32)
        stats = pool_stats()
        assert stats["entries"] <= MAX_ENTRIES
        assert stats["evictions"] >= 8

    def test_training_never_leaks_pooled_buffers_into_grads(self):
        """Two training steps whose scratch is clobbered in between must
        produce identical gradients: nothing on the tape may alias pool
        memory."""
        from repro.tensor import conv2d, max_pool2d

        rng = np.random.default_rng(5)
        x = Tensor(rng.normal(size=(2, 2, 6, 6)), dtype=default_dtype(),
                   requires_grad=True)
        w = Tensor(rng.normal(size=(3, 2, 3, 3)), dtype=default_dtype(),
                   requires_grad=True)

        def step():
            x.zero_grad()
            w.zero_grad()
            out = max_pool2d(conv2d(x, w, stride=1, padding=1), 2)
            out.sum().backward()
            return x.grad.copy(), w.grad.copy()

        gx1, gw1 = step()
        # Clobber every pooled buffer with garbage between steps.
        from repro.tensor.pool import _POOL

        for buf in _POOL.values():
            buf.fill(np.nan)
        gx2, gw2 = step()
        assert np.array_equal(gx1, gx2)
        assert np.array_equal(gw1, gw2)


# ----------------------------------------------------------------------
# float32 vs float64 end-to-end equivalence
# ----------------------------------------------------------------------
class TestPrecisionEquivalence:
    def test_tiny_table2_metrics_match_across_dtypes(self):
        """The float32 switch must not change the science: tiny Table-II
        BAC per cell matches the float64 run within 1e-3."""
        from repro.evals import MatrixSpec, run_matrix
        from repro.experiments import ExperimentConfig

        def run():
            config = ExperimentConfig(scale="tiny", seed=0)
            result = run_matrix(MatrixSpec(
                "table2", config=config, losses=("ce",),
            ))
            return {
                key: float(metrics["bac"])
                for key, metrics in result.cells.items()
            }

        f32 = run()
        with using_default_dtype(np.float64):
            f64 = run()
        assert set(f32) == set(f64)
        for key, bac in f32.items():
            assert abs(bac - f64[key]) <= 1e-3, (
                "BAC drifted across dtypes for %s: %s vs %s"
                % (key, bac, f64[key])
            )
