"""Tests for nearest-neighbor search and nearest-enemy queries."""

import numpy as np
import pytest

from repro.neighbors import KNeighbors, nearest_enemies, pairwise_distances


@pytest.fixture
def rng():
    return np.random.default_rng(31)


class TestPairwiseDistances:
    def test_euclidean_matches_direct(self, rng):
        a = rng.normal(size=(6, 3))
        b = rng.normal(size=(4, 3))
        d = pairwise_distances(a, b)
        direct = np.sqrt(((a[:, None, :] - b[None, :, :]) ** 2).sum(axis=2))
        np.testing.assert_allclose(d, direct, atol=1e-10)

    def test_manhattan(self, rng):
        a = np.array([[0.0, 0.0]])
        b = np.array([[1.0, 2.0]])
        assert pairwise_distances(a, b, "manhattan")[0, 0] == 3.0

    def test_self_distance_zero(self, rng):
        a = rng.normal(size=(5, 4))
        d = pairwise_distances(a, a)
        np.testing.assert_allclose(np.diag(d), 0.0, atol=1e-7)

    def test_dim_mismatch(self, rng):
        with pytest.raises(ValueError):
            pairwise_distances(np.zeros((2, 3)), np.zeros((2, 4)))

    def test_unknown_metric(self):
        with pytest.raises(ValueError):
            pairwise_distances(np.zeros((2, 2)), np.zeros((2, 2)), "cosine")


class TestKNeighbors:
    def test_query_finds_known_neighbors(self):
        data = np.array([[0.0], [1.0], [10.0], [11.0]])
        index = KNeighbors(k=1).fit(data)
        _, idx = index.query(np.array([[0.4], [10.4]]))
        np.testing.assert_array_equal(idx[:, 0], [0, 2])

    def test_exclude_self(self):
        data = np.array([[0.0], [1.0], [2.0]])
        index = KNeighbors(k=1).fit(data)
        _, idx = index.query(data, exclude_self=True)
        np.testing.assert_array_equal(idx[:, 0], [1, 0, 1])

    def test_sorted_by_distance(self, rng):
        data = rng.normal(size=(30, 4))
        index = KNeighbors(k=5).fit(data)
        dists, _ = index.query(rng.normal(size=(7, 4)))
        assert np.all(np.diff(dists, axis=1) >= -1e-12)

    def test_chunked_matches_unchunked(self, rng):
        data = rng.normal(size=(50, 3))
        q = rng.normal(size=(20, 3))
        d1, i1 = KNeighbors(k=3, chunk_size=7).fit(data).query(q)
        d2, i2 = KNeighbors(k=3, chunk_size=1000).fit(data).query(q)
        np.testing.assert_allclose(d1, d2)
        np.testing.assert_array_equal(i1, i2)

    def test_k_capped_at_index_size(self):
        data = np.zeros((3, 2))
        index = KNeighbors(k=10).fit(data)
        dists, idx = index.query(np.zeros((1, 2)))
        assert idx.shape[1] == 3

    def test_query_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            KNeighbors(k=1).query(np.zeros((1, 2)))

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            KNeighbors(k=0)

    def test_predict_majority_vote(self, rng):
        data = np.concatenate([rng.normal(0, 0.1, (20, 2)), rng.normal(5, 0.1, (20, 2))])
        labels = np.array([0] * 20 + [1] * 20)
        index = KNeighbors(k=5).fit(data, labels)
        preds = index.predict(np.array([[0.0, 0.0], [5.0, 5.0]]))
        np.testing.assert_array_equal(preds, [0, 1])

    def test_predict_without_labels_raises(self, rng):
        index = KNeighbors(k=1).fit(rng.normal(size=(5, 2)))
        with pytest.raises(RuntimeError):
            index.predict(np.zeros((1, 2)))

    def test_exclude_self_keeps_distinct_duplicate_point(self):
        # Rows 0 and 1 are distinct training points at identical
        # coordinates.  Excluding "self" must drop each row's own index,
        # not its duplicate twin: the twin is a legitimate neighbor at
        # distance zero.
        data = np.array([[0.0], [0.0], [5.0]])
        index = KNeighbors(k=1).fit(data)
        dists, idx = index.query(data, exclude_self=True)
        assert idx[0, 0] == 1
        assert idx[1, 0] == 0
        assert dists[0, 0] == 0.0 and dists[1, 0] == 0.0
        assert idx[2, 0] in (0, 1)

    def test_exclude_self_with_subset_query(self):
        data = np.array([[0.0], [1.0], [2.0], [3.0]])
        index = KNeighbors(k=1).fit(data)
        pool_idx = np.array([1, 3])
        _, idx = index.query(data[pool_idx], exclude_self=True,
                             self_indices=pool_idx)
        # Row 1's nearest non-self is 0 or 2 (both at distance 1);
        # row 3's is 2.
        assert idx[0, 0] in (0, 2)
        assert idx[1, 0] == 2

    def test_exclude_self_misaligned_without_indices_raises(self):
        data = np.array([[0.0], [1.0], [2.0], [3.0]])
        index = KNeighbors(k=1).fit(data)
        with pytest.raises(ValueError):
            index.query(data[:2], exclude_self=True)

    def test_exclude_self_vectorized_matches_manual(self, rng):
        data = rng.normal(size=(40, 3))
        index = KNeighbors(k=4).fit(data)
        dists, idx = index.query(data, exclude_self=True)
        assert idx.shape == (40, 4)
        for i in range(40):
            assert i not in idx[i]
            assert np.all(np.diff(dists[i]) >= -1e-12)

    def test_parallel_query_matches_serial(self, rng):
        data = rng.normal(size=(50, 3))
        q = rng.normal(size=(30, 3))
        index = KNeighbors(k=3, chunk_size=7).fit(data)
        d1, i1 = index.query(q, workers=1)
        d2, i2 = index.query(q, workers=3)
        np.testing.assert_array_equal(d1, d2)
        np.testing.assert_array_equal(i1, i2)


class TestNearestEnemies:
    def test_enemies_are_other_class(self, rng):
        x = rng.normal(size=(40, 3))
        y = rng.integers(0, 3, 40)
        _, idx = nearest_enemies(x, y, k=4)
        for i in range(40):
            for j in idx[i]:
                if j >= 0:
                    assert y[j] != y[i]

    def test_nearest_enemy_is_closest_adversary(self):
        x = np.array([[0.0], [0.5], [3.0], [4.0]])
        y = np.array([0, 0, 1, 1])
        dists, idx = nearest_enemies(x, y, k=1)
        assert idx[0, 0] == 2  # closest class-1 point to x[0]
        assert idx[2, 0] == 1  # closest class-0 point to x[2]
        assert dists[0, 0] == pytest.approx(3.0)

    def test_k_larger_than_enemy_pool(self):
        x = np.array([[0.0], [1.0], [5.0]])
        y = np.array([0, 0, 1])
        dists, idx = nearest_enemies(x, y, k=5)
        # Only one enemy exists for class 0 points: the rest padded.
        assert idx[0, 0] == 2
        assert np.isinf(dists[0, 1:]).all() or (idx[0, 1:] == -1).all()

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            nearest_enemies(np.zeros((3, 2)), np.zeros(3, dtype=int), k=0)

    def test_chunking_consistent(self, rng):
        x = rng.normal(size=(60, 4))
        y = rng.integers(0, 4, 60)
        d1, i1 = nearest_enemies(x, y, k=3, chunk_size=11)
        d2, i2 = nearest_enemies(x, y, k=3, chunk_size=1000)
        np.testing.assert_allclose(d1, d2)
        np.testing.assert_array_equal(i1, i2)

    def test_single_class_rows_padded_not_garbage(self):
        # Every sample shares one class: no enemies exist anywhere, so
        # every slot must be the documented -1/inf padding, not whatever
        # index argpartition left behind on the all-inf distance rows.
        x = np.array([[0.0], [1.0], [2.0]])
        y = np.array([0, 0, 0])
        dists, idx = nearest_enemies(x, y, k=2)
        assert (idx == -1).all()
        assert np.isinf(dists).all()

    def test_partial_enemy_rows_padded(self):
        x = np.array([[0.0], [1.0], [5.0]])
        y = np.array([0, 0, 1])
        dists, idx = nearest_enemies(x, y, k=2)
        # Class-0 rows have exactly one enemy; the second slot pads.
        assert idx[0, 0] == 2 and idx[0, 1] == -1
        assert np.isinf(dists[0, 1])

    def test_parallel_matches_serial(self, rng):
        x = rng.normal(size=(60, 4))
        y = rng.integers(0, 4, 60)
        d1, i1 = nearest_enemies(x, y, k=3, chunk_size=11, workers=1)
        d2, i2 = nearest_enemies(x, y, k=3, chunk_size=11, workers=3)
        np.testing.assert_array_equal(d1, d2)
        np.testing.assert_array_equal(i1, i2)
