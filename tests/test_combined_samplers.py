"""Tests for the combined over-sampling + cleaning pipelines."""

import numpy as np
import pytest

from repro.core import EOS
from repro.sampling import SMOTEENN, SMOTETomek


@pytest.fixture
def rng():
    return np.random.default_rng(191)


@pytest.fixture
def overlapping(rng):
    x = np.concatenate(
        [rng.normal(0.0, 1.0, size=(60, 2)), rng.normal([1.2, 0.0], 0.8, size=(8, 2))]
    )
    y = np.array([0] * 60 + [1] * 8)
    return x, y


class TestSMOTEENN:
    def test_roughly_balances(self, overlapping):
        x, y = overlapping
        xr, yr = SMOTEENN(random_state=0).fit_resample(x, y)
        counts = np.bincount(yr)
        # ENN removes some points, but the minority must be boosted far
        # beyond its original count.
        assert counts[1] > 30

    def test_cleaning_removes_points(self, overlapping):
        """Compared to plain SMOTE output, ENN drops overlap points."""
        from repro.sampling import SMOTE

        x, y = overlapping
        x_smote, _ = SMOTE(random_state=0).fit_resample(x, y)
        x_enn, _ = SMOTEENN(random_state=0).fit_resample(x, y)
        assert len(x_enn) < len(x_smote)

    def test_custom_oversampler(self, overlapping):
        x, y = overlapping
        sampler = SMOTEENN(
            oversampler=EOS(k_neighbors=5, random_state=0)
        )
        xr, yr = sampler.fit_resample(x, y)
        assert np.bincount(yr)[1] > 8  # EOS stage boosted the minority

    def test_validates_input(self):
        with pytest.raises(ValueError):
            SMOTEENN().fit_resample(np.zeros((3, 2, 2)), np.zeros(3))


class TestSMOTETomek:
    def test_roughly_balances(self, overlapping):
        x, y = overlapping
        xr, yr = SMOTETomek(random_state=0).fit_resample(x, y)
        counts = np.bincount(yr)
        assert counts[1] > 40

    def test_no_tomek_links_remain(self, overlapping):
        from repro.sampling import find_tomek_links

        x, y = overlapping
        xr, yr = SMOTETomek(random_state=0, link_strategy="both").fit_resample(
            x, y
        )
        assert find_tomek_links(xr, yr).size == 0

    def test_separated_classes_unchanged_count(self, rng):
        x = np.concatenate(
            [rng.normal(0, 0.1, (20, 2)), rng.normal(50, 0.1, (5, 2))]
        )
        y = np.array([0] * 20 + [1] * 5)
        xr, yr = SMOTETomek(random_state=0).fit_resample(x, y)
        # No links in a fully separated space: pure SMOTE balance.
        np.testing.assert_array_equal(np.bincount(yr), [20, 20])
