"""Tests for the convolutional autoencoder."""

import numpy as np
import pytest

from repro.nn import ConvAutoencoder
from repro.optim import Adam
from repro.tensor import Tensor


@pytest.fixture
def rng():
    return np.random.default_rng(201)


class TestConvAutoencoder:
    def test_shapes_roundtrip(self, rng):
        ae = ConvAutoencoder(in_channels=3, image_size=12, latent_dim=10,
                             width=4, rng=rng)
        x = Tensor(rng.random((5, 3, 12, 12)))
        z = ae.encode(x)
        assert z.shape == (5, 10)
        recon = ae.decode(z)
        assert recon.shape == (5, 3, 12, 12)

    def test_output_in_unit_interval(self, rng):
        ae = ConvAutoencoder(image_size=8, width=4, rng=rng)
        out = ae(Tensor(rng.random((3, 3, 8, 8)))).data
        assert np.all((out > 0) & (out < 1))

    def test_image_size_validation(self, rng):
        with pytest.raises(ValueError):
            ConvAutoencoder(image_size=10, rng=rng)

    def test_reconstruction_improves_with_training(self, rng):
        ae = ConvAutoencoder(in_channels=1, image_size=8, latent_dim=8,
                             width=4, rng=rng)
        x = rng.random((24, 1, 8, 8))
        opt = Adam(ae.parameters(), lr=2e-3)
        losses = []
        for _ in range(40):
            opt.zero_grad()
            loss = ((ae(Tensor(x)) - Tensor(x)) ** 2).mean()
            loss.backward()
            opt.step()
            losses.append(float(loss.data))
        assert losses[-1] < losses[0] * 0.9

    def test_gradients_reach_both_ends(self, rng):
        ae = ConvAutoencoder(image_size=8, width=4, rng=rng)
        x = Tensor(rng.random((2, 3, 8, 8)))
        ((ae(x) - x) ** 2).mean().backward()
        assert ae.enc_conv1.weight.grad is not None
        assert ae.dec_conv2.weight.grad is not None

    def test_latent_smote_workflow(self, rng):
        """DeepSMOTE-style: encode images, SMOTE the latents, decode."""
        from repro.sampling import SMOTE

        ae = ConvAutoencoder(in_channels=1, image_size=8, latent_dim=6,
                             width=4, rng=rng)
        images = rng.random((30, 1, 8, 8))
        labels = np.array([0] * 25 + [1] * 5)
        ae.eval()
        latents = ae.encode(Tensor(images)).data
        z_res, y_res = SMOTE(k_neighbors=3, random_state=0).fit_resample(
            latents, labels
        )
        synth = ae.decode(Tensor(z_res[30:])).data
        assert synth.shape == (20, 1, 8, 8)
        assert np.all((synth >= 0) & (synth <= 1))
