"""Tests for the EOS sampler (the paper's Algorithm 2)."""

import numpy as np
import pytest

from repro.core import EOS


@pytest.fixture
def rng():
    return np.random.default_rng(61)


@pytest.fixture
def boundary_data(rng):
    """Majority blob at origin, minority blob nearby (overlapping tails)."""
    x = np.concatenate(
        [rng.normal(0.0, 0.8, size=(60, 2)), rng.normal([2.5, 0.0], 0.6, size=(8, 2))]
    )
    y = np.array([0] * 60 + [1] * 8)
    return x, y


class TestEOSBasics:
    def test_balances_classes(self, boundary_data):
        x, y = boundary_data
        xr, yr = EOS(k_neighbors=5, random_state=0).fit_resample(x, y)
        np.testing.assert_array_equal(np.bincount(yr), [60, 60])

    def test_originals_preserved(self, boundary_data):
        x, y = boundary_data
        xr, yr = EOS(random_state=0).fit_resample(x, y)
        np.testing.assert_array_equal(xr[: len(x)], x)
        np.testing.assert_array_equal(yr[: len(y)], y)

    def test_deterministic(self, boundary_data):
        x, y = boundary_data
        a = EOS(random_state=5).fit_resample(x, y)
        b = EOS(random_state=5).fit_resample(x, y)
        np.testing.assert_array_equal(a[0], b[0])

    def test_balanced_input_noop(self, rng):
        x = rng.normal(size=(20, 3))
        y = np.array([0, 1] * 10)
        xr, yr = EOS(random_state=0).fit_resample(x, y)
        assert len(xr) == 20

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            EOS(k_neighbors=0)
        with pytest.raises(ValueError):
            EOS(direction="sideways")
        with pytest.raises(ValueError):
            EOS(weighting="softmax")
        with pytest.raises(ValueError):
            EOS(expansion=0.0)


class TestNearestEnemyMechanics:
    def test_find_bases_only_with_enemy_neighbors(self, rng):
        # Minority: one point near the majority plus a tight far cluster
        # whose k-neighborhoods contain only class members.
        cluster = rng.normal([50.0, 50.0], 0.01, size=(5, 2))
        x = np.concatenate([rng.normal(0, 0.2, (30, 2)), [[0.8, 0.0]], cluster])
        y = np.array([0] * 30 + [1] * 6)
        info = EOS(k_neighbors=3, random_state=0).find_bases(x, y)
        bases, enemies, _ = info[1]
        assert 30 in bases  # the near point is a base
        for i in range(31, 36):
            assert i not in bases  # cluster members see no enemies

    def test_enemy_neighbors_are_adversaries(self, boundary_data):
        x, y = boundary_data
        info = EOS(k_neighbors=5, random_state=0).find_bases(x, y)
        for cls, (bases, enemies, weights) in info.items():
            for enemy_ids in enemies:
                assert np.all(y[enemy_ids] != cls)

    def test_uniform_weights_sum_to_one(self, boundary_data):
        x, y = boundary_data
        info = EOS(k_neighbors=5, weighting="uniform").find_bases(x, y)
        for _, (_, enemies, weights) in info.items():
            for w in weights:
                assert w.sum() == pytest.approx(1.0)
                assert len(set(np.round(w, 12))) == 1  # uniform

    def test_distance_weights_favor_close_enemies(self, rng):
        x = np.concatenate([[[0.0, 0.0]], [[1.0, 0.0]], [[4.0, 0.0]]])
        y = np.array([1, 0, 0])
        info = EOS(k_neighbors=2, weighting="distance").find_bases(x, y)
        bases, enemies, weights = info[1]
        order = np.argsort(enemies[0])  # enemy ids 1 (near), 2 (far)
        w = weights[0][order]
        assert w[0] > w[1]


class TestExpansion:
    def test_expands_minority_range_toward_enemies(self, boundary_data):
        """The defining property: unlike SMOTE, EOS widens minority ranges."""
        from repro.sampling import SMOTE

        x, y = boundary_data
        lo, hi = x[y == 1].min(axis=0), x[y == 1].max(axis=0)

        xr_eos, yr_eos = EOS(k_neighbors=8, random_state=0).fit_resample(x, y)
        synth_eos = xr_eos[len(x):]
        eos_outside = np.any((synth_eos < lo) | (synth_eos > hi), axis=1).mean()
        assert eos_outside > 0.2

        xr_sm, yr_sm = SMOTE(k_neighbors=3, random_state=0).fit_resample(x, y)
        synth_sm = xr_sm[len(x):]
        sm_outside = np.any((synth_sm < lo - 1e-9) | (synth_sm > hi + 1e-9),
                            axis=1).mean()
        assert sm_outside == 0.0

    def test_toward_samples_between_base_and_enemy(self, rng):
        x = np.array([[0.0, 0.0], [0.1, 0.0], [10.0, 0.0], [10.1, 0.0]])
        y = np.array([1, 1, 0, 0])
        xr, yr = EOS(k_neighbors=3, direction="toward",
                     random_state=0).fit_resample(x, y)
        synth = xr[4:]
        assert np.all(synth[:, 0] >= -1e-9)
        assert np.all(synth[:, 0] <= 10.1 + 1e-9)

    def test_away_reflects_from_enemy(self, rng):
        x = np.array([[0.0, 0.0], [0.1, 0.0], [10.0, 0.0], [10.1, 0.0]])
        y = np.array([1, 1, 0, 0])
        xr, yr = EOS(k_neighbors=3, direction="away",
                     random_state=0).fit_resample(x, y)
        synth = xr[4:]
        # away: b + r (b - n) with n at ~10 puts points at x <= b.
        assert np.all(synth[:, 0] <= 0.1 + 1e-9)

    def test_expansion_factor_extrapolates(self, rng):
        x = np.array([[0.0], [0.1], [1.0], [1.1], [1.2]])
        y = np.array([1, 1, 0, 0, 0])
        xr, _ = EOS(
            k_neighbors=4,
            expansion=2.0,
            sampling_strategy={1: 40},
            random_state=0,
        ).fit_resample(x, y)
        synth = xr[5:]
        assert synth.max() > 1.2  # beyond the enemy

    def test_isolated_class_falls_back_to_jittered_duplication(self, rng):
        x = np.concatenate(
            [rng.normal(0, 0.01, (20, 2)), rng.normal(1000, 0.01, (3, 2))]
        )
        y = np.array([0] * 20 + [1] * 3)
        xr, yr = EOS(k_neighbors=2, random_state=0).fit_resample(x, y)
        synth = xr[23:]
        pool = x[y == 1]
        # Jitter scale: a few percent of the per-feature std (~0.01).
        spread = np.linalg.norm(pool.std(axis=0))
        for row in synth:
            nearest = np.min(np.linalg.norm(pool - row, axis=1))
            # Near an original (jittered copy), but not an exact duplicate.
            assert 0.0 < nearest < spread

    def test_isolated_class_fallback_is_deterministic(self, rng):
        x = np.concatenate(
            [rng.normal(0, 0.01, (20, 2)), rng.normal(1000, 0.01, (3, 2))]
        )
        y = np.array([0] * 20 + [1] * 3)
        a, _ = EOS(k_neighbors=2, random_state=7).fit_resample(x, y)
        b, _ = EOS(k_neighbors=2, random_state=7).fit_resample(x, y)
        np.testing.assert_array_equal(a, b)


class TestKSensitivity:
    def test_larger_k_wider_spread(self, rng):
        """More neighbors -> more distinct enemies -> more diverse samples
        (the Table-IV mechanism)."""
        x = np.concatenate(
            [rng.normal(0, 1.0, size=(100, 2)), rng.normal([3, 0], 0.5, size=(10, 2))]
        )
        y = np.array([0] * 100 + [1] * 10)
        spreads = []
        for k in (2, 20):
            xr, yr = EOS(k_neighbors=k, random_state=0).fit_resample(x, y)
            synth = xr[110:]
            spreads.append(synth.std(axis=0).mean())
        assert spreads[1] > spreads[0]

    def test_k_capped_at_dataset_size(self, rng):
        x = rng.normal(size=(6, 2))
        y = np.array([0, 0, 0, 0, 1, 1])
        xr, yr = EOS(k_neighbors=100, random_state=0).fit_resample(x, y)
        np.testing.assert_array_equal(np.bincount(yr), [4, 4])


class TestMultiClass:
    def test_three_class_balancing(self, rng):
        x = np.concatenate(
            [
                rng.normal(0, 1, size=(50, 4)),
                rng.normal(3, 1, size=(15, 4)),
                rng.normal(-3, 1, size=(5, 4)),
            ]
        )
        y = np.array([0] * 50 + [1] * 15 + [2] * 5)
        xr, yr = EOS(k_neighbors=8, random_state=0).fit_resample(x, y)
        np.testing.assert_array_equal(np.bincount(yr), [50, 50, 50])

    def test_explicit_sampling_strategy(self, rng):
        x = np.concatenate([rng.normal(0, 1, (20, 2)), rng.normal(2, 1, (5, 2))])
        y = np.array([0] * 20 + [1] * 5)
        xr, yr = EOS(
            k_neighbors=5, sampling_strategy={1: 12}, random_state=0
        ).fit_resample(x, y)
        np.testing.assert_array_equal(np.bincount(yr), [20, 12])
