"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng():
    """A fresh deterministic Generator per test."""
    return np.random.default_rng(12345)


@pytest.fixture
def blob_data(rng):
    """Three imbalanced Gaussian blobs in 2D: counts (60, 20, 6)."""
    x = np.concatenate(
        [
            rng.normal([0.0, 0.0], 0.8, size=(60, 2)),
            rng.normal([4.0, 0.0], 0.8, size=(20, 2)),
            rng.normal([0.0, 4.0], 0.8, size=(6, 2)),
        ]
    )
    y = np.array([0] * 60 + [1] * 20 + [2] * 6)
    return x, y


@pytest.fixture(scope="session")
def tiny_dataset():
    """A tiny imbalanced synthetic train/test pair (session-cached)."""
    from repro.data import make_dataset

    return make_dataset("cifar10_like", scale="tiny", seed=0)


@pytest.fixture(scope="session")
def trained_artifacts():
    """One trained tiny extractor shared by framework-level tests."""
    from repro.experiments import bench_config
    from repro.experiments.pipeline import train_phase1

    config = bench_config(phase1_epochs=10)
    return train_phase1(config, "ce")
