"""Acceptance scenario for the result store: a Table-II matrix run
writing to the store is SIGKILLed mid-sweep (simulated process death),
resumed, and must end with no duplicate or lost rows — and
``repro-report table2`` must regenerate the table byte-identical to an
uninterrupted reference run, without retraining anything.

Mirrors the micro harness of ``test_resilience_sweeps`` (same config,
samplers, and kill cell) with the sqlite store attached.
"""

import pytest

from repro.evals import MatrixSpec, ResultStore, regenerate, run_matrix
from repro.experiments import ExtractorCache, bench_config
from repro.resilience import FaultPlan, RunRegistry, SimulatedKill, \
    inject_faults

MICRO = bench_config(phase1_epochs=2, finetune_epochs=2,
                     model_kwargs={"width": 4})
SAMPLERS = ("none", "smote", "eos")
KILL_CELL = "t2/cifar10_like/ce/eos"


def sweep_spec():
    return MatrixSpec("table2", config=MICRO, losses=("ce",),
                      samplers=SAMPLERS)


@pytest.fixture(scope="module")
def reference():
    """The uninterrupted run every store scenario is compared to."""
    return run_matrix(sweep_spec(), cache=ExtractorCache())


class TestKillResumeStore:
    def test_killed_run_resumes_without_duplicate_or_lost_rows(
            self, tmp_path, reference):
        store_path = tmp_path / "evals.sqlite"
        registry = RunRegistry(tmp_path / "run")
        plan = FaultPlan()
        plan.inject("sweep.cell", action="kill", when={"cell": KILL_CELL})
        with ResultStore(store_path) as store:
            with inject_faults(plan):
                with pytest.raises(SimulatedKill):
                    run_matrix(sweep_spec(), store=store,
                               cache=ExtractorCache(registry=registry),
                               registry=registry)

            # The kill lost only the in-flight cell; the cells recorded
            # before it are already durable in the store, and the run
            # row is still open.
            run_id = registry.evals_run_id()
            assert run_id is not None
            rows = store.cell_rows(run_id)
            assert [row["cell_id"] for row in rows] == [
                "t2/cifar10_like/ce/none",
                "t2/cifar10_like/ce/smote",
            ]
            assert all(row["status"] == "done" for row in rows)
            assert store.run_row(run_id)["status"] == "running"

        # Resume in a fresh process-equivalent: new store handle, new
        # registry handle, new cache, no faults.
        with ResultStore(store_path) as store:
            resumed = run_matrix(
                sweep_spec(), store=store,
                cache=ExtractorCache(registry=RunRegistry(tmp_path / "run")),
                registry=RunRegistry(tmp_path / "run"),
            )

            # Re-bound to the same store run, reproduced the reference
            # exactly, and the idempotent insert discipline left exactly
            # one row per cell — the interrupted run's rows were
            # re-presented, not duplicated.
            assert resumed.store_run_id == run_id
            assert resumed.report == reference.report
            assert resumed.cells == reference.cells
            assert resumed.degraded == []
            rows = store.cell_rows(run_id)
            assert len(rows) == 3
            assert len({(row["cell_id"], row["status"])
                        for row in rows}) == 3
            assert store.run_row(run_id)["status"] == "complete"

            # Regeneration is a pure view over the store: byte-identical
            # to the live report, no retraining.
            assert regenerate(store, "table2") == reference.report

            # A completed run is not resumable; replaying the sweep from
            # the checkpoint opens a NEW run (append-only history) whose
            # rows and report still match.
            replayed = run_matrix(
                sweep_spec(), store=store,
                cache=ExtractorCache(registry=RunRegistry(tmp_path / "run")),
                registry=RunRegistry(tmp_path / "run"),
            )
            assert replayed.store_run_id != run_id
            assert replayed.report == reference.report
            assert len(store.cell_rows(replayed.store_run_id)) == 3
            assert len(store.cell_rows(run_id)) == 3
            assert regenerate(store, "table2",
                              run_id=replayed.store_run_id) \
                == reference.report
