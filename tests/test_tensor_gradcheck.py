"""Finite-difference gradient checks for every differentiable primitive."""

import numpy as np
import pytest

from repro.tensor import (
    Tensor,
    avg_pool2d,
    check_gradients,
    conv2d,
    conv_transpose2d,
    global_avg_pool2d,
    log_softmax,
    max_pool2d,
    softmax,
)


def _t(rng, *shape):
    return Tensor(rng.normal(size=shape), requires_grad=True)


@pytest.fixture
def rng():
    return np.random.default_rng(7)


class TestElementwiseGradcheck:
    def test_add_mul_chain(self, rng):
        a, b = _t(rng, 3, 4), _t(rng, 3, 4)
        check_gradients(lambda a, b: ((a + b) * (a - b)).sum(), [a, b])

    def test_div(self, rng):
        a = _t(rng, 4)
        b = Tensor(rng.uniform(1.0, 2.0, 4), requires_grad=True)
        check_gradients(lambda a, b: (a / b).sum(), [a, b])

    def test_exp_log(self, rng):
        a = Tensor(rng.uniform(0.5, 2.0, (3, 3)), requires_grad=True)
        check_gradients(lambda a: (a.exp() + a.log()).sum(), [a])

    def test_tanh_sigmoid(self, rng):
        a = _t(rng, 5)
        check_gradients(lambda a: (a.tanh() * a.sigmoid()).sum(), [a])

    def test_pow_tensor_exponent(self, rng):
        base = Tensor(rng.uniform(0.5, 2.0, 4), requires_grad=True)
        expo = Tensor(rng.uniform(0.5, 2.0, 4), requires_grad=True)
        check_gradients(lambda b, e: (b ** e).sum(), [base, expo])

    def test_broadcasting_grad(self, rng):
        a = _t(rng, 2, 3, 4)
        b = _t(rng, 4)
        check_gradients(lambda a, b: ((a * b) ** 2).sum(), [a, b])

    def test_matmul(self, rng):
        a, b = _t(rng, 3, 5), _t(rng, 5, 2)
        check_gradients(lambda a, b: ((a @ b) ** 2).sum(), [a, b])

    def test_maximum(self, rng):
        a, b = _t(rng, 6), _t(rng, 6)
        check_gradients(lambda a, b: a.maximum(b).sum(), [a, b])


class TestReductionGradcheck:
    def test_mean_axis(self, rng):
        a = _t(rng, 4, 5)
        check_gradients(lambda a: (a.mean(axis=0) ** 2).sum(), [a])

    def test_var(self, rng):
        a = _t(rng, 4, 5)
        check_gradients(lambda a: a.var(axis=0).sum(), [a])

    def test_max_reduction(self, rng):
        # Use well-separated values so finite differences don't cross ties.
        a = Tensor(
            rng.permutation(np.arange(12.0)).reshape(3, 4), requires_grad=True
        )
        check_gradients(lambda a: (a.max(axis=1) ** 2).sum(), [a])


class TestSoftmaxGradcheck:
    def test_softmax(self, rng):
        a = _t(rng, 3, 5)
        w = Tensor(rng.normal(size=(3, 5)))
        check_gradients(lambda a: (softmax(a, axis=1) * w).sum(), [a])

    def test_log_softmax(self, rng):
        a = _t(rng, 3, 5)
        w = Tensor(rng.normal(size=(3, 5)))
        check_gradients(lambda a: (log_softmax(a, axis=1) * w).sum(), [a])

    def test_softmax_rows_sum_to_one(self, rng):
        a = _t(rng, 4, 7)
        s = softmax(a, axis=1)
        np.testing.assert_allclose(s.data.sum(axis=1), np.ones(4))

    def test_log_softmax_matches_log_of_softmax(self, rng):
        a = _t(rng, 2, 6)
        np.testing.assert_allclose(
            log_softmax(a).data, np.log(softmax(a).data), atol=1e-10
        )

    def test_stability_with_large_logits(self):
        a = Tensor(np.array([[1000.0, 1000.0, -1000.0]]))
        assert np.all(np.isfinite(softmax(a).data))
        assert np.all(np.isfinite(log_softmax(a).data))


class TestConvGradcheck:
    def test_conv2d_basic(self, rng):
        x = _t(rng, 2, 2, 5, 5)
        w = Tensor(rng.normal(size=(3, 2, 3, 3)) * 0.3, requires_grad=True)
        b = _t(rng, 3)
        check_gradients(
            lambda x, w, b: (conv2d(x, w, b, stride=1, padding=1) ** 2).sum(),
            [x, w, b],
        )

    def test_conv2d_strided(self, rng):
        x = _t(rng, 1, 2, 6, 6)
        w = Tensor(rng.normal(size=(2, 2, 3, 3)) * 0.3, requires_grad=True)
        check_gradients(
            lambda x, w: (conv2d(x, w, stride=2, padding=1) ** 2).sum(), [x, w]
        )

    def test_conv2d_no_padding(self, rng):
        x = _t(rng, 1, 1, 4, 4)
        w = Tensor(rng.normal(size=(1, 1, 2, 2)), requires_grad=True)
        check_gradients(lambda x, w: (conv2d(x, w) ** 2).sum(), [x, w])

    def test_conv2d_shape(self, rng):
        x = Tensor(rng.normal(size=(2, 3, 8, 8)))
        w = Tensor(rng.normal(size=(5, 3, 3, 3)))
        assert conv2d(x, w, stride=2, padding=1).shape == (2, 5, 4, 4)

    def test_conv2d_channel_mismatch_raises(self, rng):
        x = Tensor(rng.normal(size=(1, 3, 4, 4)))
        w = Tensor(rng.normal(size=(2, 4, 3, 3)))
        with pytest.raises(ValueError):
            conv2d(x, w)

    def test_conv2d_matches_direct_computation(self, rng):
        # Compare against a naive nested-loop convolution.
        x = rng.normal(size=(1, 2, 5, 5))
        w = rng.normal(size=(3, 2, 3, 3))
        out = conv2d(Tensor(x), Tensor(w), stride=1, padding=0).data
        expected = np.zeros((1, 3, 3, 3))
        for co in range(3):
            for i in range(3):
                for j in range(3):
                    expected[0, co, i, j] = (
                        x[0, :, i : i + 3, j : j + 3] * w[co]
                    ).sum()
        np.testing.assert_allclose(out, expected, atol=1e-10)


class TestConvTranspose:
    def test_adjoint_of_conv2d(self, rng):
        """Inner-product identity: <conv(x), y> == <x, convT(y)> with a
        shared weight (the defining property of the transposed conv)."""
        x = rng.normal(size=(2, 3, 7, 7))
        y = rng.normal(size=(2, 4, 4, 4))
        w = rng.normal(size=(4, 3, 3, 3)) * 0.2
        lhs = (conv2d(Tensor(x), Tensor(w), stride=2, padding=1).data * y).sum()
        rhs = (
            conv_transpose2d(Tensor(y), Tensor(w), stride=2, padding=1).data * x
        ).sum()
        assert lhs == pytest.approx(rhs)

    def test_output_shape_upsamples(self, rng):
        x = Tensor(rng.normal(size=(1, 2, 4, 4)))
        w = Tensor(rng.normal(size=(2, 3, 3, 3)))
        out = conv_transpose2d(x, w, stride=2, padding=1)
        assert out.shape == (1, 3, 7, 7)

    def test_gradcheck(self, rng):
        x = _t(rng, 1, 2, 3, 3)
        w = Tensor(rng.normal(size=(2, 3, 3, 3)) * 0.2, requires_grad=True)
        b = _t(rng, 3)
        check_gradients(
            lambda x, w, b: (
                conv_transpose2d(x, w, b, stride=2, padding=1) ** 2
            ).sum(),
            [x, w, b],
        )

    def test_channel_mismatch_raises(self, rng):
        x = Tensor(rng.normal(size=(1, 3, 4, 4)))
        w = Tensor(rng.normal(size=(2, 3, 3, 3)))
        with pytest.raises(ValueError):
            conv_transpose2d(x, w)

    def test_layer_module(self, rng):
        """The ConvTranspose2d layer upsamples inside an autoencoder-ish
        stack and its parameters receive gradients."""
        from repro.nn import ConvTranspose2d

        layer = ConvTranspose2d(2, 1, 3, stride=2, padding=1,
                                rng=np.random.default_rng(0))
        x = Tensor(rng.normal(size=(2, 2, 4, 4)), requires_grad=True)
        out = layer(x)
        assert out.shape == (2, 1, 7, 7)
        (out ** 2).sum().backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None


class TestPoolingGradcheck:
    def test_max_pool(self, rng):
        x = Tensor(
            rng.permutation(np.arange(32.0)).reshape(1, 2, 4, 4),
            requires_grad=True,
        )
        check_gradients(lambda x: (max_pool2d(x, 2) ** 2).sum(), [x])

    def test_avg_pool(self, rng):
        x = _t(rng, 1, 2, 4, 4)
        check_gradients(lambda x: (avg_pool2d(x, 2) ** 2).sum(), [x])

    def test_global_avg_pool(self, rng):
        x = _t(rng, 2, 3, 4, 4)
        check_gradients(lambda x: (global_avg_pool2d(x) ** 2).sum(), [x])

    def test_max_pool_values(self):
        x = Tensor(np.arange(16.0).reshape(1, 1, 4, 4))
        out = max_pool2d(x, 2).data
        np.testing.assert_allclose(out[0, 0], [[5.0, 7.0], [13.0, 15.0]])

    def test_avg_pool_values(self):
        x = Tensor(np.arange(16.0).reshape(1, 1, 4, 4))
        out = avg_pool2d(x, 2).data
        np.testing.assert_allclose(out[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_global_avg_pool_is_mean(self, rng):
        data = rng.normal(size=(3, 5, 4, 4))
        out = global_avg_pool2d(Tensor(data)).data
        np.testing.assert_allclose(out, data.mean(axis=(2, 3)))


class TestIm2Col:
    def test_im2col_col2im_adjoint(self, rng):
        """col2im must be the exact adjoint of im2col: <Ax, y> == <x, A'y>."""
        from repro.tensor import col2im, im2col

        x = rng.normal(size=(2, 3, 6, 6))
        cols, oh, ow = im2col(x, (3, 3), stride=2, padding=1)
        y = rng.normal(size=cols.shape)
        back = col2im(y, x.shape, (3, 3), stride=2, padding=1)
        assert np.dot(cols.ravel(), y.ravel()) == pytest.approx(
            np.dot(x.ravel(), back.ravel())
        )


class TestSanitizerAwareGradcheck:
    """Extended cases from repro.tensor.gradcheck: numeric gradient
    comparison running *inside* detect_anomaly(), so the tape sanitizer
    instrumentation is exercised on realistic conv/batchnorm graphs."""

    def test_conv2d_nonsquare_kernel(self):
        from repro.tensor import gradcheck_conv2d_nonsquare

        assert gradcheck_conv2d_nonsquare(seed=0)

    def test_batchnorm_eval_mode(self):
        from repro.tensor import gradcheck_batchnorm_eval

        assert gradcheck_batchnorm_eval(seed=0)

    def test_batchnorm_eval_uses_running_stats_gradient(self):
        """Eval-mode BN gradient must be exactly gamma/sqrt(var+eps)."""
        from repro.nn import BatchNorm1d

        gen = np.random.default_rng(11)
        bn = BatchNorm1d(4)
        for _ in range(3):
            bn(Tensor(gen.normal(1.0, 2.0, size=(16, 4))))
        bn.eval()
        x = Tensor(gen.normal(size=(5, 4)), requires_grad=True)
        bn(x).sum().backward()
        expected = bn.weight.data / np.sqrt(bn.running_var + bn.eps)
        np.testing.assert_allclose(x.grad, np.broadcast_to(expected, (5, 4)))
