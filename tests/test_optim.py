"""Tests for optimizers and learning-rate schedulers."""

import numpy as np
import pytest

from repro.nn import Parameter
from repro.optim import (
    SGD,
    Adam,
    CosineAnnealingLR,
    MultiStepLR,
    StepLR,
    WarmupWrapper,
    clip_grad_norm,
)
from repro.tensor import Tensor


def quadratic_param(start=5.0):
    return Parameter(np.array([start]))


def step_quadratic(opt, p, n=50):
    """Minimize f(x) = x^2 for n steps; return final |x|."""
    for _ in range(n):
        opt.zero_grad()
        loss = (p * p).sum()
        loss.backward()
        opt.step()
    return abs(float(p.data[0]))


class TestSGD:
    def test_converges_on_quadratic(self):
        p = quadratic_param()
        assert step_quadratic(SGD([p], lr=0.1), p) < 1e-3

    def test_momentum_accelerates(self):
        p1, p2 = quadratic_param(), quadratic_param()
        plain = step_quadratic(SGD([p1], lr=0.02), p1, n=20)
        momentum = step_quadratic(SGD([p2], lr=0.02, momentum=0.9), p2, n=20)
        assert momentum < plain

    def test_nesterov_requires_momentum(self):
        with pytest.raises(ValueError):
            SGD([quadratic_param()], lr=0.1, nesterov=True)

    def test_nesterov_converges(self):
        p = quadratic_param()
        assert step_quadratic(SGD([p], lr=0.05, momentum=0.9, nesterov=True), p, n=120) < 0.05

    def test_weight_decay_shrinks_weights(self):
        p = Parameter(np.array([1.0]))
        opt = SGD([p], lr=0.1, weight_decay=0.5)
        # No data gradient: only decay acts.
        p.grad = np.zeros(1)
        opt.step()
        assert float(p.data[0]) == pytest.approx(1.0 - 0.1 * 0.5)

    def test_skips_params_without_grad(self):
        p = Parameter(np.array([1.0]))
        opt = SGD([p], lr=0.1)
        opt.step()  # no grad set: must not crash or move
        assert float(p.data[0]) == 1.0

    def test_empty_params_rejected(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_bad_lr_rejected(self):
        with pytest.raises(ValueError):
            SGD([quadratic_param()], lr=0.0)


class TestAdam:
    def test_converges_on_quadratic(self):
        p = quadratic_param()
        assert step_quadratic(Adam([p], lr=0.2), p, n=200) < 0.05

    def test_bias_correction_first_step(self):
        # First Adam step should move by ~lr regardless of gradient scale.
        p = Parameter(np.array([1.0]))
        opt = Adam([p], lr=0.1)
        p.grad = np.array([1e-4])
        opt.step()
        assert float(p.data[0]) == pytest.approx(0.9, abs=1e-3)

    def test_weight_decay(self):
        p = Parameter(np.array([10.0]))
        opt = Adam([p], lr=0.1, weight_decay=1.0)
        p.grad = np.zeros(1)
        opt.step()
        assert float(p.data[0]) < 10.0


class TestClipGradNorm:
    def test_clips_when_above(self):
        p = Parameter(np.array([1.0]))
        p.grad = np.array([10.0])
        total = clip_grad_norm([p], max_norm=1.0)
        assert total == pytest.approx(10.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0)

    def test_leaves_small_gradients(self):
        p = Parameter(np.array([1.0]))
        p.grad = np.array([0.5])
        clip_grad_norm([p], max_norm=1.0)
        assert p.grad[0] == pytest.approx(0.5)


class TestSchedulers:
    def test_step_lr(self):
        opt = SGD([quadratic_param()], lr=1.0)
        sched = StepLR(opt, step_size=2, gamma=0.1)
        lrs = []
        for _ in range(5):
            sched.step()
            lrs.append(opt.lr)
        assert lrs == pytest.approx([1.0, 0.1, 0.1, 0.01, 0.01])

    def test_multi_step_lr(self):
        opt = SGD([quadratic_param()], lr=1.0)
        sched = MultiStepLR(opt, milestones=[2, 4], gamma=0.5)
        lrs = []
        for _ in range(5):
            sched.step()
            lrs.append(opt.lr)
        assert lrs == pytest.approx([1.0, 0.5, 0.5, 0.25, 0.25])

    def test_cosine_endpoints(self):
        opt = SGD([quadratic_param()], lr=1.0)
        sched = CosineAnnealingLR(opt, t_max=10, eta_min=0.0)
        for _ in range(10):
            sched.step()
        assert opt.lr == pytest.approx(0.0, abs=1e-12)

    def test_cosine_monotone_decreasing(self):
        opt = SGD([quadratic_param()], lr=1.0)
        sched = CosineAnnealingLR(opt, t_max=8)
        lrs = []
        for _ in range(8):
            sched.step()
            lrs.append(opt.lr)
        assert all(a >= b for a, b in zip(lrs, lrs[1:]))

    def test_warmup_ramps_then_delegates(self):
        opt = SGD([quadratic_param()], lr=1.0)
        sched = WarmupWrapper(StepLR(opt, step_size=100), warmup_epochs=4)
        lrs = []
        for _ in range(6):
            sched.step()
            lrs.append(opt.lr)
        assert lrs[:4] == pytest.approx([0.25, 0.5, 0.75, 1.0])
        assert lrs[4] == pytest.approx(1.0)

    def test_invalid_args(self):
        opt = SGD([quadratic_param()], lr=1.0)
        with pytest.raises(ValueError):
            StepLR(opt, step_size=0)
        with pytest.raises(ValueError):
            CosineAnnealingLR(opt, t_max=0)
        with pytest.raises(ValueError):
            WarmupWrapper(StepLR(opt, step_size=1), warmup_epochs=-1)
