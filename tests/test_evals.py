"""Tests for repro.evals: the declarative experiment matrix, the sqlite
result store, store-backed regeneration, the ``repro-report`` CLI, the
deprecated runner wrappers, and the EVAL001 lint rule.

The store/regeneration tests run on synthetic cell payloads (no
training); only the wrapper-equivalence and worker-determinism tests
execute a real (micro-scale, one/two-cell) sweep.

Note: nothing here imports sqlite3 — EVAL001 pins all sqlite access to
``repro.evals.store``, and the lint gate checks this tree too.
"""

import json
import os
import warnings

import pytest

from repro.analysis import LintEngine
from repro.evals import (
    EvalsStoreError,
    MatrixSpec,
    ResultStore,
    compile_matrix,
    plan_from_payload,
    plan_to_payload,
    regenerate,
    render_view,
    run_matrix,
    spec_to_payload,
)
from repro.evals import store as store_module
from repro.evals.__main__ import main as report_main
from repro.experiments import ExtractorCache, bench_config, run_table2
from repro.experiments import runners as runners_module
from repro.experiments.result import RunResult
from repro.resilience import CellFailure

MICRO = bench_config(phase1_epochs=2, finetune_epochs=2,
                     model_kwargs={"width": 4})


def fake_metrics(i):
    return {"bac": 0.5 + 0.01 * i, "gm": 0.4 + 0.01 * i, "fm": 0.3}


# ----------------------------------------------------------------------
# Matrix compilation
# ----------------------------------------------------------------------
class TestMatrixCompile:
    def test_compilation_is_deterministic(self):
        spec = MatrixSpec("table2")
        first = compile_matrix(spec)
        second = compile_matrix(MatrixSpec("table2"))
        assert [c.cell_id for c in first.cells] == \
            [c.cell_id for c in second.cells]
        assert [c.key for c in first.cells] == [c.key for c in second.cells]
        assert first.headers == second.headers
        assert first.prewarm == second.prewarm

    def test_table2_defaults_match_legacy_grid(self):
        plan = compile_matrix(MatrixSpec("table2"))
        # 1 dataset x 4 losses x 5 samplers, nested iteration order.
        assert len(plan.cells) == 20
        assert plan.cells[0].cell_id == "t2/cifar10_like/ce/none"
        assert plan.cells[0].key == ("cifar10_like", "ce", "none")
        assert plan.cells[5].cell_id == "t2/cifar10_like/asl/none"
        assert plan.summary["kind"] == "eos_wins"
        # One extractor per (dataset, loss).
        assert len(plan.prewarm) == 4

    def test_seed_axis_expands_every_base_cell(self):
        spec = MatrixSpec("table2", losses=("ce",), samplers=("none",),
                          seeds=(0, 1))
        plan = compile_matrix(spec)
        assert [c.cell_id for c in plan.cells] == [
            "t2/cifar10_like/ce/none/seed=0",
            "t2/cifar10_like/ce/none/seed=1",
        ]
        assert plan.cells[0].key == ("cifar10_like", "ce", "none", 0)
        assert plan.cells[1].overrides["seed"] == 1
        assert "seed" in plan.headers
        # Paper-shape summaries are defined on the base grid only.
        assert plan.summary == {"kind": "none"}

    def test_hyper_axis_is_a_cross_product(self):
        spec = MatrixSpec("table2", losses=("ce",), samplers=("none",),
                          seeds=(0, 1), hyper={"finetune_lr": (0.1, 0.2)})
        plan = compile_matrix(spec)
        assert len(plan.cells) == 4
        assert plan.cells[0].cell_id == \
            "t2/cifar10_like/ce/none/seed=0/finetune_lr=0.1"
        assert plan.cells[0].overrides == {
            "dataset": "cifar10_like", "seed": 0, "finetune_lr": 0.1,
        }
        assert plan.cells[-1].key == ("cifar10_like", "ce", "none", 1, 0.2)
        assert plan.headers[-5:] == ("seed", "finetune_lr",
                                     "BAC", "GM", "FM")

    def test_include_exclude_filter_cells_and_prewarm(self):
        plan = compile_matrix(
            MatrixSpec("table2", include=lambda cell: cell.sampler == "eos")
        )
        assert len(plan.cells) == 4
        assert all(c.sampler == "eos" for c in plan.cells)
        assert len(plan.prewarm) == 4
        excluded = compile_matrix(
            MatrixSpec("table2", losses=("ce",),
                       exclude=lambda cell: cell.sampler == "eos")
        )
        assert [c.sampler for c in excluded.cells] == \
            ["none", "smote", "bsmote", "balsvm"]

    def test_table3_mode_is_validated(self):
        with pytest.raises(ValueError):
            compile_matrix(MatrixSpec("table3", mode="bogus"))
        pixel = compile_matrix(MatrixSpec("table3", mode="pixel"))
        kinds = {c.sampler: c.kind for c in pixel.cells}
        assert kinds["eos"] == "timed_sampler"
        assert kinds["gamo"] == "preprocessed"
        assert pixel.show_seconds

    def test_figure_and_unknown_views_are_rejected(self):
        with pytest.raises(ValueError):
            compile_matrix(MatrixSpec("figure3"))
        with pytest.raises(ValueError):
            compile_matrix(MatrixSpec("table9"))

    def test_plan_round_trips_through_json(self):
        plan = compile_matrix(MatrixSpec("table2"))
        payload = json.loads(json.dumps(plan_to_payload(plan)))
        rebuilt = plan_from_payload(payload)
        assert rebuilt.title == plan.title
        assert rebuilt.headers == plan.headers
        assert [c.cell_id for c in rebuilt.cells] == \
            [c.cell_id for c in plan.cells]
        results = {c.key: fake_metrics(i) for i, c in enumerate(plan.cells)}
        assert render_view(rebuilt, results) == render_view(plan, results)

    def test_unknown_hyper_field_is_rejected_before_running(self):
        spec = MatrixSpec("table2", config=MICRO,
                          hyper={"not_a_config_field": (1,)})
        with pytest.raises(KeyError):
            run_matrix(spec)


# ----------------------------------------------------------------------
# RunResult: typed fields + deprecated Mapping shim
# ----------------------------------------------------------------------
class TestRunResult:
    def make(self, **kwargs):
        failure = CellFailure("boom", error_type="DivergenceError")
        data = {"results": {("a",): fake_metrics(0), ("b",): failure},
                "report": "table text"}
        return RunResult(data, telemetry={"runner": "table2"}, **kwargs)

    def test_attribute_access_is_silent(self):
        out = self.make()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert out.report == "table text"
            assert out.cells == out.results
            assert out.telemetry["runner"] == "table2"
            assert out.degraded == [("b",)]
            assert out.store_run_id is None
            assert len(out) == 4

    def test_dict_access_warns(self):
        out = self.make()
        with pytest.warns(DeprecationWarning):
            assert out["report"] == "table text"
        with pytest.warns(DeprecationWarning):
            assert set(dict(out)) == {"results", "report", "telemetry",
                                      "degraded"}

    def test_store_run_id_key_only_when_recorded(self):
        out = self.make(store_run_id=7)
        assert out.store_run_id == 7
        assert len(out) == 5
        with pytest.warns(DeprecationWarning):
            assert out["store_run_id"] == 7


# ----------------------------------------------------------------------
# Deprecated wrappers delegate to run_matrix
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def shared_cache():
    """One phase-1 extractor shared by every real-run test below."""
    return ExtractorCache()


class TestDeprecatedWrappers:
    def test_every_legacy_runner_is_a_marked_wrapper(self):
        assert len(runners_module.__all__) == 12
        for name in runners_module.__all__:
            assert hasattr(getattr(runners_module, name), "__wrapped__"), name

    def test_wrapper_output_is_byte_identical_to_run_matrix(self,
                                                            shared_cache):
        with pytest.warns(DeprecationWarning):
            legacy = run_table2(MICRO, losses=("ce",), samplers=("none",),
                                cache=shared_cache)
        modern = run_matrix(
            MatrixSpec("table2", config=MICRO, losses=("ce",),
                       samplers=("none",)),
            cache=shared_cache,
        )
        assert legacy.report == modern.report
        assert legacy.cells == modern.cells
        assert legacy.degraded == modern.degraded == []


class TestWorkerDeterminism:
    def test_parallel_run_matches_serial(self, shared_cache):
        spec = MatrixSpec("table2", config=MICRO, losses=("ce",),
                          samplers=("none", "smote"))
        serial = run_matrix(spec, cache=shared_cache)
        parallel = run_matrix(spec, cache=shared_cache, workers=2)
        assert parallel.report == serial.report
        assert parallel.cells == serial.cells


# ----------------------------------------------------------------------
# Result store
# ----------------------------------------------------------------------
class TestResultStore:
    def test_round_trip_and_idempotent_recording(self, tmp_path):
        with ResultStore(tmp_path / "evals.sqlite") as store:
            run_id = store.begin_run("table2", fingerprint="fp",
                                     spec={"view": "table2"})
            assert store.run_row(run_id)["status"] == "running"
            assert store.is_resumable_run(run_id, "fp")
            assert not store.is_resumable_run(run_id, "other-fp")

            key = ("cifar10_like", "ce", "none")
            for _ in range(3):  # replays must not duplicate rows
                store.record_cell(run_id, "t2/cifar10_like/ce/none", 0,
                                  key, "done", fake_metrics(0))
            assert len(store.cell_rows(run_id)) == 1

            store.finish_run(
                run_id, report="the table", extras={"eos_wins": 1},
                cells=[{"position": 0, "cell_id": "t2/cifar10_like/ce/none",
                        "key": key, "status": "done",
                        "payload": fake_metrics(0)}],
            )
            assert len(store.cell_rows(run_id)) == 1
            row = store.run_row(run_id)
            assert row["status"] == "complete"
            assert row["report"] == "the table"
            assert not store.is_resumable_run(run_id, "fp")
            assert store.latest_run_id("table2") == run_id
            assert store.latest_run_id("table2", status="complete") == run_id
            assert store.latest_run_id("table5") is None
            assert "1 run(s), 1 cell row(s)" in store.summary()

    def test_cell_results_prefers_done_over_failed(self, tmp_path):
        with ResultStore(tmp_path / "evals.sqlite") as store:
            run_id = store.begin_run("table2")
            key = ("cifar10_like", "ce", "smote")
            failure = CellFailure("diverged", error_type="DivergenceError",
                                  attempts=2)
            store.record_cell(run_id, "t2/c/ce/smote", 0, key, "failed",
                              failure.to_payload())
            store.record_cell(run_id, "t2/c/ce/smote", 0, key, "done",
                              fake_metrics(1))
            assert len(store.cell_rows(run_id)) == 2
            best = store.cell_results(run_id)["t2/c/ce/smote"]
            assert best["status"] == "done"
            assert best["key"] == key
            assert best["payload"] == fake_metrics(1)

    def test_schema_version_mismatch_raises(self, tmp_path, monkeypatch):
        path = tmp_path / "evals.sqlite"
        ResultStore(path).close()
        monkeypatch.setattr(store_module, "SCHEMA_VERSION",
                            store_module.SCHEMA_VERSION + 1)
        with pytest.raises(EvalsStoreError):
            ResultStore(path)

    def test_bench_history(self, tmp_path):
        with ResultStore(tmp_path / "evals.sqlite") as store:
            store.record_bench("resample", {"seconds": 1.5}, source="a.json")
            store.record_bench("resample", {"seconds": 1.2})
            rows = store.bench_rows("resample")
            assert [json.loads(r["payload_json"])["seconds"] for r in rows] \
                == [1.5, 1.2]
            assert store.bench_rows("other") == []


# ----------------------------------------------------------------------
# Regeneration as a view over the store
# ----------------------------------------------------------------------
def synthetic_run(store, failing=()):
    """Record a fake-but-complete table2 run; returns the live report."""
    spec = MatrixSpec("table2", losses=("ce",), samplers=("none", "eos"))
    plan = compile_matrix(spec)
    results = {}
    run_id = store.begin_run("table2", fingerprint="fp",
                             spec=spec_to_payload(spec),
                             plan=plan_to_payload(plan))
    for index, cell in enumerate(plan.cells):
        if cell.key in failing:
            failure = CellFailure("diverged",
                                  error_type="DivergenceError", attempts=2)
            results[cell.key] = failure
            store.record_cell(run_id, cell.cell_id, index, cell.key,
                              "failed", failure.to_payload())
        else:
            results[cell.key] = fake_metrics(index)
            store.record_cell(run_id, cell.cell_id, index, cell.key,
                              "done", results[cell.key])
    report, _ = render_view(plan, results)
    store.finish_run(run_id, report=report)
    return report


class TestRegenerate:
    def test_regenerated_report_is_byte_identical(self, tmp_path):
        with ResultStore(tmp_path / "evals.sqlite") as store:
            live = synthetic_run(store)
            assert regenerate(store, "table2") == live

    def test_failed_cells_regenerate_as_degraded_rows(self, tmp_path):
        with ResultStore(tmp_path / "evals.sqlite") as store:
            live = synthetic_run(store,
                                 failing={("cifar10_like", "ce", "eos")})
            regen = regenerate(store, "table2")
            assert regen == live
            assert "FAILED(DivergenceError" in regen
            assert "DEGRADED: 1 / 2 cell(s) failed" in regen

    def test_incomplete_run_refuses_to_regenerate(self, tmp_path):
        with ResultStore(tmp_path / "evals.sqlite") as store:
            spec = MatrixSpec("table2", losses=("ce",),
                              samplers=("none", "eos"))
            plan = compile_matrix(spec)
            run_id = store.begin_run("table2",
                                     plan=plan_to_payload(plan))
            cell = plan.cells[0]
            store.record_cell(run_id, cell.cell_id, 0, cell.key, "done",
                              fake_metrics(0))
            with pytest.raises(EvalsStoreError, match="missing 1 cell"):
                regenerate(store, "table2")

    def test_empty_store_raises(self, tmp_path):
        with ResultStore(tmp_path / "evals.sqlite") as store:
            with pytest.raises(EvalsStoreError, match="no run"):
                regenerate(store, "table2")


# ----------------------------------------------------------------------
# repro-report CLI
# ----------------------------------------------------------------------
class TestReportCLI:
    def test_missing_store_is_an_error(self, tmp_path, capsys):
        assert report_main(["t2", "--store",
                            str(tmp_path / "nope.sqlite")]) == 1
        assert "does not exist" in capsys.readouterr().err

    def test_view_runs_and_perf_targets(self, tmp_path, capsys):
        path = str(tmp_path / "evals.sqlite")
        with ResultStore(path) as store:
            live = synthetic_run(store)

        assert report_main(["t2", "--store", path]) == 0
        assert capsys.readouterr().out.strip() == live.strip()

        assert report_main(["runs", "--store", path]) == 0
        out = capsys.readouterr().out
        assert "table2" in out and "complete" in out

        assert report_main(["perf", "--store", path]) == 0
        assert "Perf trajectory" in capsys.readouterr().out

    def test_ingest_bench_feeds_perf_history(self, tmp_path, capsys):
        path = str(tmp_path / "evals.sqlite")
        bench = tmp_path / "BENCH_resample.json"
        bench.write_text(json.dumps(
            {"benchmark": "resample", "eos": {"seconds": 1.5}}
        ))
        assert report_main(["ingest-bench", str(bench),
                            "--store", path]) == 0
        assert "ingested" in capsys.readouterr().out
        assert report_main(["perf", "--store", path]) == 0
        out = capsys.readouterr().out
        assert "resample" in out and "eos.seconds" in out

    def test_unknown_target_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            report_main(["table9", "--store", str(tmp_path / "s.sqlite")])


# ----------------------------------------------------------------------
# EVAL001: sqlite is pinned to repro.evals.store
# ----------------------------------------------------------------------
class TestDirectSqliteRule:
    def test_flags_sqlite_outside_the_store_module(self, tmp_path):
        offender = tmp_path / "offender.py"
        offender.write_text(
            "import sqlite3\nconn = sqlite3.connect('x.db')\n"
        )
        report = LintEngine(select=["EVAL001"]).run([tmp_path])
        assert {f.rule for f in report.findings} == {"EVAL001"}
        assert len(report.findings) == 2  # the import and the connect

    def test_store_module_is_exempt(self, tmp_path):
        store_py = tmp_path / "evals" / "store.py"
        store_py.parent.mkdir()
        store_py.write_text(
            "import sqlite3\nconn = sqlite3.connect('x.db')\n"
        )
        report = LintEngine(select=["EVAL001"]).run([tmp_path])
        assert report.findings == []

    def test_src_tree_has_exactly_one_sqlite_module(self):
        src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
        report = LintEngine(select=["EVAL001"]).run([src])
        assert report.findings == []
