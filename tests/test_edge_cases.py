"""Edge-case tests across modules: odd shapes, degenerate inputs, rare paths."""

import numpy as np
import pytest

from repro.tensor import Tensor, nll_loss, log_softmax, where


@pytest.fixture
def rng():
    return np.random.default_rng(211)


class TestTensorEdges:
    def test_where_with_float_condition(self, rng):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([10.0, 20.0], requires_grad=True)
        cond = np.array([1.0, 0.0])  # float mask
        out = where(cond, a, b)
        np.testing.assert_allclose(out.data, [1.0, 20.0])
        out.sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 0.0])
        np.testing.assert_allclose(b.grad, [0.0, 1.0])

    def test_nll_none_reduction_backward(self, rng):
        lp = log_softmax(Tensor(rng.normal(size=(3, 4)), requires_grad=True))
        losses = nll_loss(lp, np.array([0, 1, 2]), reduction="none")
        losses.backward(np.ones(3))
        # Gradient flowed to the original logits producer.
        assert losses.shape == (3,)

    def test_single_element_tensor_ops(self):
        a = Tensor([[2.0]], requires_grad=True)
        ((a ** 3).log() * 2).backward()
        assert a.grad[0, 0] == pytest.approx(2 * 3 / 2.0)

    def test_zero_dim_result_item(self):
        a = Tensor([1.0, 2.0, 3.0])
        assert a.sum().item() == 6.0

    def test_matmul_1d_1d(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        out = a @ b
        assert out.item() == 11.0
        out.backward()
        np.testing.assert_allclose(a.grad, [3.0, 4.0])


class TestDataEdges:
    def test_empty_dataset_num_classes(self):
        from repro.data import ArrayDataset

        ds = ArrayDataset(np.empty((0, 3, 2, 2)), np.empty(0, dtype=np.int64))
        assert ds.num_classes == 0
        assert len(ds) == 0

    def test_loader_on_single_sample(self, rng):
        from repro.data import ArrayDataset, DataLoader

        ds = ArrayDataset(rng.random((1, 1, 2, 2)), np.array([0]))
        batches = list(DataLoader(ds, batch_size=8, rng=rng))
        assert len(batches) == 1
        assert batches[0][0].shape[0] == 1

    def test_minimum_scale_dataset(self):
        from repro.data import make_dataset

        train, test, info = make_dataset(
            "celeba_like", scale={"n_max_train": 5, "n_test": 4}, seed=0
        )
        assert len(train) >= info["num_classes"]
        assert len(test) == 4 * info["num_classes"]


class TestSamplerEdges:
    def test_eos_two_points_per_class(self, rng):
        from repro.core import EOS

        x = np.array([[0.0, 0.0], [0.2, 0.0], [1.0, 0.0]])
        y = np.array([0, 0, 1])
        xr, yr = EOS(k_neighbors=2, random_state=0).fit_resample(x, y)
        np.testing.assert_array_equal(np.bincount(yr), [2, 2])

    def test_smote_exact_duplicate_points(self, rng):
        """Duplicate coordinates must not break self-exclusion."""
        from repro.sampling import SMOTE

        x = np.array([[1.0, 1.0]] * 5 + [[5.0, 5.0]] * 2)
        y = np.array([0] * 5 + [1] * 2)
        xr, yr = SMOTE(k_neighbors=3, random_state=0).fit_resample(x, y)
        np.testing.assert_array_equal(np.bincount(yr), [5, 5])

    def test_single_class_input_noop(self, rng):
        from repro.sampling import SMOTE

        x = rng.normal(size=(10, 2))
        y = np.zeros(10, dtype=np.int64)
        xr, yr = SMOTE(random_state=0).fit_resample(x, y)
        assert len(xr) == 10


class TestMetricsEdges:
    def test_single_class_truth(self):
        from repro.metrics import balanced_accuracy, geometric_mean, macro_f1

        y = [1, 1, 1]
        assert balanced_accuracy(y, y, num_classes=3) == 1.0
        assert geometric_mean(y, y, num_classes=3) == 1.0
        assert macro_f1(y, y, num_classes=3) == 1.0

    def test_all_wrong(self):
        from repro.metrics import balanced_accuracy

        assert balanced_accuracy([0, 1], [1, 0]) == 0.0


class TestMiscEdges:
    def test_tsne_three_components(self, rng):
        from repro.manifold import TSNE

        out = TSNE(n_components=3, n_iter=30, seed=0).fit_transform(
            rng.normal(size=(12, 5))
        )
        assert out.shape == (12, 3)

    def test_linear_svm_binary(self, rng):
        from repro.svm import LinearSVM

        x = np.concatenate([rng.normal(-2, 0.5, (30, 2)), rng.normal(2, 0.5, (30, 2))])
        y = np.array([0] * 30 + [1] * 30)
        svm = LinearSVM(epochs=30).fit(x, y)
        assert svm.score(x, y) > 0.95

    def test_chart_single_point_series(self):
        from repro.utils import ascii_chart

        chart = ascii_chart({"p": [1.0]}, width=8, height=3)
        assert "*" in chart

    def test_gap_with_single_feature(self, rng):
        from repro.core import generalization_gap

        f = rng.normal(size=(20, 1))
        y = rng.integers(0, 2, 20)
        out = generalization_gap(f[:10], y[:10], f[10:], y[10:])
        assert np.isfinite(out["mean"])
