"""Tests for the ASCII chart renderer."""

import numpy as np
import pytest

from repro.utils import ascii_chart


class TestAsciiChart:
    def test_contains_all_elements(self):
        chart = ascii_chart(
            {"a": [1.0, 2.0, 3.0]},
            width=20,
            height=5,
            title="Title",
            x_label="step",
        )
        assert "Title" in chart
        assert "legend: *=a" in chart
        assert "(step)" in chart

    def test_rising_series_marks_corners(self):
        chart = ascii_chart({"a": [0.0, 1.0]}, width=10, height=4)
        lines = chart.splitlines()
        plot = [line.split("|", 1)[1] for line in lines if "|" in line]
        # Max value at top-right, min at bottom-left.
        assert plot[0].rstrip().endswith("*")
        assert plot[-1].lstrip().startswith("*")

    def test_multiple_series_distinct_markers(self):
        chart = ascii_chart({"a": [1, 2], "b": [2, 1]}, width=10, height=4)
        assert "*" in chart and "o" in chart
        assert "*=a" in chart and "o=b" in chart

    def test_constant_series_no_crash(self):
        chart = ascii_chart({"flat": [5.0, 5.0, 5.0]}, width=12, height=4)
        assert "*" in chart

    def test_nan_values_skipped(self):
        chart = ascii_chart(
            {"gappy": [1.0, float("nan"), 3.0]}, width=12, height=4
        )
        assert "*" in chart

    def test_axis_labels_show_range(self):
        chart = ascii_chart({"a": np.linspace(0.0, 2.0, 5)}, width=10, height=4)
        assert "2" in chart
        assert "0" in chart

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            ascii_chart({})
        with pytest.raises(ValueError):
            ascii_chart({"a": [float("nan")]})

    def test_different_lengths_share_axis(self):
        chart = ascii_chart({"short": [1, 2], "long": [1, 2, 3, 4]}, width=20,
                            height=5)
        assert "0 .. 3" in chart
