"""Tests for seed-repetition statistics and the CIFAR binary loaders."""

import numpy as np
import pytest

from repro.data import load_cifar10_binary, load_cifar100_binary
from repro.experiments import (
    aggregate_metrics,
    bench_config,
    repeated_sampler_comparison,
    run_seeds,
)


class TestAggregateMetrics:
    def test_mean_and_std(self):
        out = aggregate_metrics([{"bac": 0.5}, {"bac": 0.7}])
        mean, std = out["bac"]
        assert mean == pytest.approx(0.6)
        assert std == pytest.approx(0.1)

    def test_multiple_keys(self):
        out = aggregate_metrics([{"a": 1.0, "b": 2.0}, {"a": 3.0, "b": 4.0}])
        assert out["a"][0] == 2.0
        assert out["b"][0] == 3.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            aggregate_metrics([])

    def test_mismatched_keys_raise(self):
        with pytest.raises(ValueError):
            aggregate_metrics([{"a": 1.0}, {"b": 2.0}])


class TestRunSeeds:
    def test_calls_per_seed(self):
        calls = []

        def fn(seed):
            calls.append(seed)
            return {"bac": seed / 10.0}

        per_seed, agg = run_seeds(fn, [1, 2, 3])
        assert calls == [1, 2, 3]
        assert len(per_seed) == 3
        assert agg["bac"][0] == pytest.approx(0.2)


class TestRepeatedComparison:
    def test_two_seed_comparison(self):
        """Mirrors the paper's multi-cut protocol at micro scale."""
        config = bench_config(phase1_epochs=4)
        out = repeated_sampler_comparison(
            config, "ce", ("none", "eos"), seeds=(0, 1)
        )
        assert set(out["aggregated"]) == {"none", "eos"}
        assert len(out["per_sampler"]["eos"]) == 2
        assert "±" in out["report"]
        # Resampling should beat the baseline on seed-averaged BAC.
        assert out["aggregated"]["eos"]["bac"][0] > out["aggregated"]["none"][
            "bac"
        ][0]


def _write_cifar10_bin(path, n, rng):
    labels = rng.integers(0, 10, n, dtype=np.uint8)
    pixels = rng.integers(0, 256, (n, 3072), dtype=np.uint8)
    records = np.concatenate([labels[:, None], pixels], axis=1)
    path.write_bytes(records.tobytes())
    return labels, pixels


class TestCifarBinaryIO:
    def test_cifar10_roundtrip(self, tmp_path):
        rng = np.random.default_rng(0)
        path = tmp_path / "data_batch_1.bin"
        labels, pixels = _write_cifar10_bin(path, 20, rng)
        ds = load_cifar10_binary(path)
        assert len(ds) == 20
        assert ds.image_shape == (3, 32, 32)
        np.testing.assert_array_equal(ds.labels, labels)
        np.testing.assert_allclose(
            ds.images.reshape(20, -1), pixels / 255.0
        )

    def test_cifar10_multiple_files(self, tmp_path):
        rng = np.random.default_rng(1)
        p1, p2 = tmp_path / "b1.bin", tmp_path / "b2.bin"
        _write_cifar10_bin(p1, 5, rng)
        _write_cifar10_bin(p2, 7, rng)
        ds = load_cifar10_binary([p1, p2])
        assert len(ds) == 12

    def test_cifar10_bad_size_raises(self, tmp_path):
        path = tmp_path / "broken.bin"
        path.write_bytes(b"\x00" * 100)
        with pytest.raises(ValueError):
            load_cifar10_binary(path)

    def test_cifar10_no_paths(self):
        with pytest.raises(ValueError):
            load_cifar10_binary([])

    def test_cifar100_fine_and_coarse(self, tmp_path):
        rng = np.random.default_rng(2)
        n = 8
        coarse = rng.integers(0, 20, n, dtype=np.uint8)
        fine = rng.integers(0, 100, n, dtype=np.uint8)
        pixels = rng.integers(0, 256, (n, 3072), dtype=np.uint8)
        records = np.concatenate(
            [coarse[:, None], fine[:, None], pixels], axis=1
        )
        path = tmp_path / "train.bin"
        path.write_bytes(records.tobytes())

        ds_fine = load_cifar100_binary(path, label_kind="fine")
        ds_coarse = load_cifar100_binary(path, label_kind="coarse")
        np.testing.assert_array_equal(ds_fine.labels, fine)
        np.testing.assert_array_equal(ds_coarse.labels, coarse)

    def test_cifar100_invalid_kind(self, tmp_path):
        with pytest.raises(ValueError):
            load_cifar100_binary(tmp_path / "x.bin", label_kind="super")
