"""Micro-scale smoke tests for the experiment runners not covered elsewhere.

The benchmark suite runs every runner at the tiny scale with shape
assertions; these tests only verify the runners' *mechanics* (payload
structure, report rendering, option handling) at the smallest possible
configuration so the unit suite stays fast.
"""

import pytest

from repro.experiments import (
    ExtractorCache,
    bench_config,
    run_figure6,
    run_runtime_comparison,
    run_table1,
    run_table3,
    run_table5,
)

MICRO = bench_config(phase1_epochs=3, finetune_epochs=3)


@pytest.fixture(scope="module")
def cache():
    return ExtractorCache()


class TestRunnerMechanics:
    def test_table1_payload(self, cache):
        out = run_table1(MICRO, cache=cache)
        assert ("cifar10_like", "pre", "smote") in out["results"]
        assert ("cifar10_like", "post", "smote") in out["results"]
        assert out["cells"] == 3
        assert "Table I" in out["report"]

    def test_table3_embedding_mode(self, cache):
        out = run_table3(MICRO, samplers=("bagan", "eos"), cache=cache)
        assert out["mode"] == "embedding"
        assert ("cifar10_like", "ce", "bagan") in out["timing"]

    def test_table5_custom_architectures(self, cache):
        out = run_table5(
            MICRO,
            architectures=(("smallconvnet", {"width": 4}),),
            cache=cache,
        )
        assert ("smallconvnet", "baseline") in out["results"]
        assert ("smallconvnet", "eos") in out["results"]

    def test_figure6_payload(self, cache):
        out = run_figure6(
            MICRO, majority_class=0, minority_class=9,
            samplers=("none", "eos"), max_points=60, cache=cache,
        )
        coords, labels = out["embeddings"]["eos"]
        assert coords.shape[1] == 2
        assert set(labels) <= {0, 9}

    def test_runtime_payload(self):
        out = run_runtime_comparison(MICRO, samplers=("smote",))
        assert out["speedup"] > 0
        assert len(out["pre_seconds"]) == 1

    def test_figure3_report_includes_chart(self, cache):
        from repro.experiments import run_figure3

        out = run_figure3(MICRO, losses=("ce",), samplers=("none", "eos"),
                          cache=cache)
        assert "legend:" in out["report"]

    def test_figure7_report_includes_chart(self, cache):
        from repro.experiments import run_figure7

        out = run_figure7(MICRO, epochs=2, samplers=("eos",), cache=cache)
        assert "legend:" in out["report"]
