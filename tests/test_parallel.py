"""Tests for the deterministic fork-based process pool (repro.parallel)."""

import os
import signal
import threading
import time

import pytest

from repro.parallel import (
    PersistentPool,
    PoolInterrupted,
    TaskFailure,
    WorkerError,
    derive_seed,
    get_default_workers,
    in_worker,
    parallel_map,
    resolve_workers,
    run_cells,
    set_default_workers,
)
from repro.resilience import (
    CellFailure,
    FaultPlan,
    RunRegistry,
    SimulatedKill,
    inject_faults,
)
from repro.telemetry import MetricsRegistry, Tracer, set_metrics, set_tracer


@pytest.fixture(autouse=True)
def _clean_global_state():
    """Telemetry uninstalled and worker default reset around every test."""
    set_tracer(None)
    set_metrics(None)
    previous = get_default_workers()
    yield
    set_tracer(None)
    set_metrics(None)
    set_default_workers(previous)


class TestDeriveSeed:
    def test_pure_function_of_root_and_index(self):
        assert derive_seed(0, 0) == derive_seed(0, 0)
        assert derive_seed(0, 0) != derive_seed(0, 1)
        assert derive_seed(0, 0) != derive_seed(1, 0)

    def test_fits_in_uint32(self):
        for index in range(50):
            assert 0 <= derive_seed(7, index) < 2 ** 32


class TestResolveWorkers:
    def test_none_uses_process_default(self):
        set_default_workers(3)
        assert resolve_workers(None) == 3

    def test_explicit_overrides_default(self):
        set_default_workers(3)
        assert resolve_workers(1) == 1
        assert resolve_workers(5) == 5

    def test_floor_is_one(self):
        assert resolve_workers(0) == 1
        assert resolve_workers(-2) == 1


class TestParallelMap:
    def test_serial_preserves_order_and_seeds(self):
        out = parallel_map(lambda item, seed: (item, seed), "abc",
                           max_workers=1)
        assert [r[0] for r in out] == ["a", "b", "c"]
        assert [r[1] for r in out] == [derive_seed(0, i) for i in range(3)]

    def test_parallel_bit_identical_to_serial(self):
        fn = lambda item, seed: item * 10 + seed % 97
        items = list(range(9))
        serial = parallel_map(fn, items, max_workers=1, seed_root=5)
        forked = parallel_map(fn, items, max_workers=4, seed_root=5)
        assert serial == forked

    def test_parallel_runs_in_child_processes(self):
        parent = os.getpid()
        pids = parallel_map(lambda _item, _seed: os.getpid(), range(4),
                            max_workers=2)
        assert all(pid != parent for pid in pids)

    def test_nested_pool_degrades_to_serial(self):
        def fn(_item, _seed):
            return (in_worker(), resolve_workers(4))

        assert not in_worker()
        out = parallel_map(fn, range(2), max_workers=2)
        assert out == [(True, 1), (True, 1)]

    def test_worker_exception_raises_worker_error(self):
        def fn(item, _seed):
            if item == 1:
                raise ValueError("bad cell")
            return item

        with pytest.raises(WorkerError, match="bad cell"):
            parallel_map(fn, range(3), max_workers=2)

    def test_worker_exception_returned_as_task_failure(self):
        def fn(item, _seed):
            if item == 1:
                raise ValueError("bad cell")
            return item

        out = parallel_map(fn, range(3), max_workers=2, on_error="return")
        assert out[0] == 0 and out[2] == 2
        assert isinstance(out[1], TaskFailure)
        assert out[1].reason == "ValueError"
        assert out[1].message == "bad cell"
        assert "ValueError" in out[1].traceback

    def test_dead_worker_becomes_worker_died_failure(self):
        def fn(item, _seed):
            if item == 2:
                os._exit(99)
            return item

        out = parallel_map(fn, range(4), max_workers=2, on_error="return")
        assert out[0] == 0 and out[1] == 1 and out[3] == 3
        failure = out[2]
        assert isinstance(failure, TaskFailure)
        assert failure.reason == "WorkerDied"
        assert failure.exit_status == 99

    def test_simulated_kill_dies_like_a_real_crash(self):
        def fn(item, _seed):
            if item == 0:
                raise SimulatedKill("injected")
            return item

        out = parallel_map(fn, range(3), max_workers=2, on_error="return")
        assert isinstance(out[0], TaskFailure)
        assert out[0].reason == "WorkerDied"
        assert out[1] == 1 and out[2] == 2

    def test_on_result_sees_every_task(self):
        seen = {}
        parallel_map(lambda item, _seed: item * 2, range(5), max_workers=3,
                     on_result=lambda index, result: seen.__setitem__(
                         index, result))
        assert seen == {i: i * 2 for i in range(5)}

    def test_more_workers_than_items(self):
        assert parallel_map(lambda i, _s: i, range(2), max_workers=16) \
            == [0, 1]

    def test_empty_items(self):
        assert parallel_map(lambda i, _s: i, [], max_workers=4) == []

    def test_invalid_on_error(self):
        with pytest.raises(ValueError):
            parallel_map(lambda i, _s: i, [1], on_error="ignore")


class TestPoolInterruption:
    """SIGINT/SIGTERM mid-map must surface as PoolInterrupted — after
    every worker has been killed and reaped, never as a raw ^C."""

    def _assert_all_dead(self, pids):
        for pid in pids:
            with pytest.raises(ProcessLookupError):
                os.kill(pid, 0)

    def test_serial_keyboard_interrupt_is_structured(self):
        def fn(item, _seed):
            if item == 1:
                raise KeyboardInterrupt  # what a ^C mid-call raises
            return item

        with pytest.raises(PoolInterrupted) as excinfo:
            parallel_map(fn, range(3), max_workers=1)
        assert excinfo.value.signal_name == "SIGINT"
        assert excinfo.value.completed == [0]
        assert excinfo.value.pending == [1, 2]

    @pytest.mark.parametrize("signum, name", [
        (signal.SIGTERM, "SIGTERM"),
        (signal.SIGINT, "SIGINT"),
    ])
    def test_signal_mid_parallel_map_leaves_no_orphans(
            self, tmp_path, signum, name):
        def fn(_item, _seed):
            pid_file = tmp_path / ("%d.pid" % os.getpid())
            pid_file.write_text(str(os.getpid()))
            time.sleep(30.0)  # far past the test's own lifetime
            return None

        timer = threading.Timer(
            0.5, lambda: os.kill(os.getpid(), signum)
        )
        timer.start()
        try:
            with pytest.raises(PoolInterrupted) as excinfo:
                parallel_map(fn, range(3), max_workers=2)
        finally:
            timer.cancel()
        assert excinfo.value.signal_name == name
        assert excinfo.value.completed == []
        assert excinfo.value.pending == [0, 1, 2]
        # Every worker that had started was SIGKILLed and reaped before
        # the exception escaped: no orphan survives the pool.
        pids = [int(p.read_text()) for p in tmp_path.glob("*.pid")]
        assert pids, "no worker ever started; the test raced its timer"
        self._assert_all_dead(pids)

    def test_sigterm_disposition_restored_after_map(self):
        before = signal.getsignal(signal.SIGTERM)
        parallel_map(lambda i, _s: i, range(3), max_workers=2)
        assert signal.getsignal(signal.SIGTERM) is before

    def test_sigterm_disposition_restored_after_interrupt(self):
        before = signal.getsignal(signal.SIGTERM)

        def fn(item, _seed):
            raise KeyboardInterrupt

        with pytest.raises(PoolInterrupted):
            parallel_map(fn, [1], max_workers=1)
        assert signal.getsignal(signal.SIGTERM) is before

    def test_pool_interrupted_is_a_keyboard_interrupt(self):
        # Existing except-KeyboardInterrupt handlers (the serve daemon's
        # requeue path) must keep catching interruptions.
        assert issubclass(PoolInterrupted, KeyboardInterrupt)
        exc = PoolInterrupted("SIGTERM", [0], [1, 2])
        assert "SIGTERM" in str(exc)
        assert "2 pending" in str(exc)


class TestTelemetryForwarding:
    def test_worker_spans_and_counters_merge_into_parent(self):
        tracer = Tracer()
        metrics = MetricsRegistry()
        set_tracer(tracer)
        set_metrics(metrics)

        def fn(item, _seed):
            from repro.telemetry import get_metrics, get_tracer
            with get_tracer().span("unit", item=item):
                get_metrics().counter("work.units").inc()
            return item

        out = parallel_map(fn, range(3), max_workers=2)
        assert out == [0, 1, 2]
        forwarded = [r for r in tracer.records
                     if r.get("attrs", {}).get("forwarded")]
        unit_spans = [r for r in forwarded if r["name"] == "unit"]
        assert len(unit_spans) == 3
        assert sorted(r["attrs"]["item"] for r in unit_spans) == [0, 1, 2]
        assert metrics.snapshot()["counters"]["work.units"] == 3

    def test_no_forwarding_when_telemetry_disabled(self):
        out = parallel_map(lambda item, _seed: item, range(3), max_workers=2)
        assert out == [0, 1, 2]


class TestRunCells:
    @staticmethod
    def tasks(kill=()):
        def make(cell_id, value):
            def thunk(_attempt):
                if cell_id in kill:
                    raise SimulatedKill("die %s" % cell_id)
                return {"value": value}
            return (cell_id, thunk)

        return [make("grid/a", 1), make("grid/b", 2), make("grid/c", 3)]

    def test_parallel_matches_serial(self, tmp_path):
        serial = run_cells(self.tasks(), max_workers=1)
        forked = run_cells(self.tasks(), max_workers=3)
        assert serial == forked == [{"value": v} for v in (1, 2, 3)]

    def test_results_checkpointed_in_registry(self, tmp_path):
        registry = RunRegistry(tmp_path / "run")
        run_cells(self.tasks(), registry=registry, max_workers=2)
        assert registry.cell_statuses() == {
            "grid/a": "done", "grid/b": "done", "grid/c": "done",
        }

    def test_dead_worker_becomes_failed_cell_then_resumes(self, tmp_path):
        registry = RunRegistry(tmp_path / "run")
        out = run_cells(self.tasks(kill={"grid/b"}), registry=registry,
                        max_workers=2)
        assert out[0] == {"value": 1} and out[2] == {"value": 3}
        failure = out[1]
        assert isinstance(failure, CellFailure)
        assert failure.error_type == "WorkerDied"
        assert registry.cell_statuses()["grid/b"] == "failed"
        # A failed cell does not count as checkpointed...
        assert not registry.has_cell("grid/b")

        # ...so resuming from the same directory re-runs exactly it.
        resumed = run_cells(self.tasks(),
                            registry=RunRegistry(tmp_path / "run"),
                            max_workers=2)
        assert resumed == [{"value": v} for v in (1, 2, 3)]

    def test_fail_soft_false_raises_after_batch(self):
        with pytest.raises(WorkerError):
            run_cells(self.tasks(kill={"grid/c"}), max_workers=2,
                      fail_soft=False)

    def test_worker_exception_recorded_with_its_type(self, tmp_path):
        def bad(_attempt):
            raise RuntimeError("loss diverged")

        out = run_cells([("grid/x", bad), ("grid/y", lambda _a: {"ok": 1})],
                        max_workers=2)
        assert isinstance(out[0], CellFailure)
        assert out[0].error_type == "RuntimeError"
        assert "loss diverged" in out[0].reason
        assert out[1] == {"ok": 1}


class TestTableSweepBitExactness:
    def test_tiny_table2_identical_across_worker_counts(self):
        """The ISSUE acceptance criterion: --workers 4 == --workers 1."""
        from repro.experiments import ExtractorCache, bench_config, run_table2

        micro = bench_config(phase1_epochs=2, finetune_epochs=2,
                             model_kwargs={"width": 4})
        kwargs = dict(losses=("ce",), samplers=("none", "smote", "eos"))
        serial = run_table2(micro, cache=ExtractorCache(), workers=1,
                            **kwargs)
        forked = run_table2(micro, cache=ExtractorCache(), workers=4,
                            **kwargs)
        assert serial["results"] == forked["results"]
        assert serial["report"] == forked["report"]


# ----------------------------------------------------------------------
# PersistentPool: pre-forked supervised worker set
# ----------------------------------------------------------------------
def _echo_task(item, seed):
    return {"item": item, "seed": seed}


def _fragile_task(item, seed):
    if item == "die":
        os._exit(42)
    if item == "hang":
        time.sleep(30.0)
    return {"item": item, "seed": seed}


def _run_pool(pool, expected, deadline=30.0):
    """Poll until ``expected`` completions land (or fail loudly)."""
    from repro.telemetry import monotonic

    results = {}
    cutoff = monotonic() + deadline
    while len(results) < expected and monotonic() < cutoff:
        for task_id, value in pool.poll(timeout=0.2):
            results[task_id] = value
    assert len(results) == expected, "only %d/%d tasks completed" % (
        len(results), expected)
    return results


class TestPersistentPool:
    def test_results_and_seeds_roundtrip(self):
        with PersistentPool(_echo_task, workers=3) as pool:
            for i in range(12):
                pool.submit("t%d" % i, i, seed=100 + i)
            results = _run_pool(pool, 12)
        for i in range(12):
            assert results["t%d" % i] == {"item": i, "seed": 100 + i}

    def test_work_is_actually_distributed(self):
        with PersistentPool(_echo_task, workers=3) as pool:
            for i in range(12):
                pool.submit("t%d" % i, i, seed=i)
            _run_pool(pool, 12)
            served = [w["jobs"] for w in pool.stats()["workers"]]
        assert sum(served) == 12
        assert len([jobs for jobs in served if jobs]) >= 2

    def test_dead_worker_respawns_and_task_reruns_same_seed(self):
        with PersistentPool(_fragile_task, workers=2, task_retries=1) as pool:
            pool.submit("victim", "die", seed=7)
            pool.submit("bystander", "ok", seed=8)
            results = _run_pool(pool, 2)
            # "die" exits the worker on dispatch 0; dispatch 1 runs on
            # the replacement... which also dies: retries exhausted.
            assert isinstance(results["victim"], TaskFailure)
            assert results["victim"].reason == "WorkerDied"
            assert results["bystander"] == {"item": "ok", "seed": 8}
            assert pool.deaths == 2  # dispatch 0 + the one retry
            assert pool.respawns == 2
            assert len(pool.stats()["workers"]) == 2  # pool never shrinks

    def test_injected_kill_on_first_dispatch_is_transparent(self):
        # The chaos shape the daemon relies on: a worker SIGKILLed
        # mid-job is respawned and the job re-dispatched under the SAME
        # seed — the completion is indistinguishable from a clean run.
        plan = FaultPlan()
        plan.inject("worker.task", action="kill",
                    when={"task": "victim", "dispatch": 0})
        with inject_faults(plan):
            with PersistentPool(_echo_task, workers=2,
                                task_retries=1) as pool:
                pool.submit("victim", "payload", seed=1234, label="victim")
                results = _run_pool(pool, 1)
                assert results["victim"] == {"item": "payload", "seed": 1234}
                assert pool.deaths == 1
                assert pool.respawns == 1

    def test_recycle_after_replaces_workers_cleanly(self):
        with PersistentPool(_echo_task, workers=1, recycle_after=2) as pool:
            for i in range(6):
                pool.submit("t%d" % i, i, seed=i)
            results = _run_pool(pool, 6)
            assert all(results["t%d" % i]["item"] == i for i in range(6))
            assert pool.recycles >= 2
            assert pool.deaths == 0  # recycling is not dying

    def test_watchdog_kills_hung_worker_at_deadline(self):
        with PersistentPool(_fragile_task, workers=2, task_deadline=0.5,
                            task_retries=0) as pool:
            pool.submit("stuck", "hang", seed=1)
            pool.submit("fine", "ok", seed=2)
            results = _run_pool(pool, 2, deadline=15.0)
            assert results["fine"] == {"item": "ok", "seed": 2}
            assert isinstance(results["stuck"], TaskFailure)
            assert results["stuck"].reason == "WatchdogKilled"
            assert "deadline" in results["stuck"].message

    def test_stats_shape_for_health_reporting(self):
        with PersistentPool(_echo_task, workers=2) as pool:
            stats = pool.stats()
            assert set(stats) == {"workers", "deaths", "respawns",
                                  "recycles", "backlog"}
            assert len(stats["workers"]) == 2
            for worker in stats["workers"]:
                assert set(worker) == {"pid", "jobs", "in_flight", "phase",
                                       "last_beat_age", "retiring"}
                assert worker["in_flight"] is None

    def test_submit_after_close_raises(self):
        pool = PersistentPool(_echo_task, workers=1)
        pool.close()
        with pytest.raises(RuntimeError):
            pool.submit("t", 1, seed=1)
        pool.close()  # idempotent

    def test_backlog_beyond_worker_count_completes(self):
        with PersistentPool(_echo_task, workers=2) as pool:
            for i in range(20):
                pool.submit("t%d" % i, i, seed=i)
            assert pool.backlog() > 0 or not pool.idle()
            results = _run_pool(pool, 20)
        assert sorted(r["item"] for r in results.values()) == list(range(20))
