"""Tests for the BBN-style dual-branch head."""

import numpy as np
import pytest

from repro.core import DualBranchHead, reverse_sampling_probabilities
from repro.nn import Linear


@pytest.fixture
def rng():
    return np.random.default_rng(181)


@pytest.fixture
def embeddings(rng):
    centers = np.zeros((3, 8))
    centers[0, 0] = centers[1, 1] = centers[2, 2] = 2.2
    counts = [120, 30, 6]
    x, y = [], []
    for c, n in enumerate(counts):
        x.append(rng.normal(centers[c], 1.0, size=(n, 8)))
        y += [c] * n
    return np.concatenate(x), np.array(y)


def head_factory():
    return Linear(8, 3, rng=np.random.default_rng(5))


class TestReverseSampling:
    def test_probabilities_sum_to_one(self):
        y = np.array([0] * 90 + [1] * 10)
        p = reverse_sampling_probabilities(y)
        assert p.sum() == pytest.approx(1.0)

    def test_class_mass_equalized(self):
        """Total probability mass per class is equal under reversal."""
        y = np.array([0] * 90 + [1] * 10)
        p = reverse_sampling_probabilities(y)
        assert p[y == 0].sum() == pytest.approx(p[y == 1].sum())

    def test_minority_sample_more_likely(self):
        y = np.array([0] * 90 + [1] * 10)
        p = reverse_sampling_probabilities(y)
        assert p[-1] > p[0]

    def test_absent_class_handled(self):
        y = np.array([0, 0, 2, 2])
        p = reverse_sampling_probabilities(y, num_classes=3)
        assert np.isfinite(p).all()
        assert p.sum() == pytest.approx(1.0)


class TestDualBranchHead:
    def test_alpha_schedule_cumulative(self, embeddings):
        x, y = embeddings
        model = DualBranchHead(head_factory, epochs=5, random_state=0)
        model.fit(x, y)
        alphas = model.alpha_history
        assert alphas[0] == pytest.approx(1.0)
        assert all(a >= b for a, b in zip(alphas, alphas[1:]))
        assert alphas[-1] < 0.5

    def test_improves_minority_over_uniform_only(self, embeddings):
        """The blended model must beat the uniform branch alone on BAC."""
        from repro.metrics import balanced_accuracy

        x, y = embeddings
        model = DualBranchHead(head_factory, epochs=12, random_state=0).fit(x, y)
        blended = model.score(x, y)
        uniform_only = balanced_accuracy(
            y,
            model.uniform_head(
                __import__("repro.tensor", fromlist=["Tensor"]).Tensor(x)
            ).data.argmax(axis=1),
        )
        assert blended >= uniform_only - 0.02

    def test_predict_shapes(self, embeddings):
        x, y = embeddings
        model = DualBranchHead(head_factory, epochs=2, random_state=0).fit(x, y)
        assert model.predict_logits(x).shape == (len(x), 3)
        assert model.predict(x).shape == (len(x),)

    def test_logits_are_branch_average(self, embeddings):
        from repro.tensor import Tensor

        x, y = embeddings
        model = DualBranchHead(head_factory, epochs=2, random_state=0).fit(x, y)
        manual = 0.5 * (
            model.uniform_head(Tensor(x)).data
            + model.rebalance_head(Tensor(x)).data
        )
        np.testing.assert_allclose(model.predict_logits(x), manual, rtol=1e-5, atol=1e-6)

    def test_deterministic(self, embeddings):
        x, y = embeddings
        a = DualBranchHead(head_factory, epochs=3, random_state=9).fit(x, y)
        b = DualBranchHead(head_factory, epochs=3, random_state=9).fit(x, y)
        np.testing.assert_allclose(a.predict_logits(x), b.predict_logits(x))

    def test_invalid_epochs(self):
        with pytest.raises(ValueError):
            DualBranchHead(head_factory, epochs=0)

    def test_reasonable_accuracy(self, embeddings):
        x, y = embeddings
        model = DualBranchHead(head_factory, epochs=12, random_state=0).fit(x, y)
        assert model.score(x, y) > 0.7
