"""Tests for the data substrate: datasets, loaders, imbalance, synthetic."""

import numpy as np
import pytest

from repro.data import (
    ArrayDataset,
    DataLoader,
    apply_imbalance,
    exponential_profile,
    imbalance_ratio,
    list_datasets,
    make_dataset,
    step_profile,
)
from repro.data.synthetic import SyntheticConfig, SyntheticImageFamily


@pytest.fixture
def rng():
    return np.random.default_rng(21)


@pytest.fixture
def dataset(rng):
    images = rng.random((30, 3, 4, 4))
    labels = np.repeat(np.arange(3), 10)
    return ArrayDataset(images, labels)


class TestArrayDataset:
    def test_basic_properties(self, dataset):
        assert len(dataset) == 30
        assert dataset.num_classes == 3
        assert dataset.image_shape == (3, 4, 4)

    def test_class_counts(self, dataset):
        np.testing.assert_array_equal(dataset.class_counts(), [10, 10, 10])
        np.testing.assert_array_equal(dataset.class_counts(5), [10, 10, 10, 0, 0])

    def test_getitem(self, dataset):
        img, label = dataset[5]
        assert img.shape == (3, 4, 4)
        assert label == 0

    def test_subset_copies(self, dataset):
        sub = dataset.subset([0, 1, 2])
        sub.images[0] = 0.0
        assert dataset.images[0].max() > 0

    def test_class_indices(self, dataset):
        idx = dataset.class_indices(1)
        assert np.all(dataset.labels[idx] == 1)
        assert len(idx) == 10

    def test_split_fractions(self, dataset, rng):
        a, b = dataset.split(0.3, rng)
        assert len(a) == 9 and len(b) == 21

    def test_split_invalid_fraction(self, dataset, rng):
        with pytest.raises(ValueError):
            dataset.split(1.5, rng)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            ArrayDataset(np.zeros((4, 3, 2)), np.zeros(4))
        with pytest.raises(ValueError):
            ArrayDataset(np.zeros((4, 3, 2, 2)), np.zeros(5))

    def test_shuffled_preserves_pairs(self, dataset, rng):
        shuffled = dataset.shuffled(rng)
        # Every (image sum, label) pair must survive.
        orig = sorted(zip(dataset.images.sum(axis=(1, 2, 3)), dataset.labels))
        new = sorted(zip(shuffled.images.sum(axis=(1, 2, 3)), shuffled.labels))
        np.testing.assert_allclose(orig, new)


class TestDataLoader:
    def test_batch_sizes(self, dataset, rng):
        loader = DataLoader(dataset, batch_size=8, rng=rng)
        sizes = [len(labels) for _, labels in loader]
        assert sizes == [8, 8, 8, 6]
        assert len(loader) == 4

    def test_drop_last(self, dataset, rng):
        loader = DataLoader(dataset, batch_size=8, drop_last=True, rng=rng)
        sizes = [len(labels) for _, labels in loader]
        assert sizes == [8, 8, 8]
        assert len(loader) == 3

    def test_shuffle_changes_order(self, dataset):
        loader = DataLoader(
            dataset, batch_size=30, shuffle=True, rng=np.random.default_rng(0)
        )
        _, labels1 = next(iter(loader))
        assert not np.array_equal(labels1, dataset.labels)

    def test_no_shuffle_preserves_order(self, dataset, rng):
        loader = DataLoader(dataset, batch_size=30, shuffle=False, rng=rng)
        _, labels = next(iter(loader))
        np.testing.assert_array_equal(labels, dataset.labels)

    def test_transform_applied(self, dataset, rng):
        loader = DataLoader(
            dataset,
            batch_size=30,
            transform=lambda images, rng: images * 0.0,
            rng=rng,
        )
        images, _ = next(iter(loader))
        assert images.max() == 0.0

    def test_invalid_batch_size(self, dataset):
        with pytest.raises(ValueError):
            DataLoader(dataset, batch_size=0)


class TestImbalanceProfiles:
    def test_exponential_endpoints(self):
        counts = exponential_profile(1000, 10, 100)
        assert counts[0] == 1000
        assert counts[-1] == 10

    def test_exponential_monotone(self):
        counts = exponential_profile(500, 20, 50)
        assert all(a >= b for a, b in zip(counts, counts[1:]))

    def test_exponential_floor_at_one(self):
        counts = exponential_profile(10, 10, 100)
        assert counts.min() >= 1

    def test_exponential_single_class(self):
        np.testing.assert_array_equal(exponential_profile(7, 1, 100), [7])

    def test_exponential_invalid(self):
        with pytest.raises(ValueError):
            exponential_profile(0, 10, 100)
        with pytest.raises(ValueError):
            exponential_profile(100, 10, 0.5)

    def test_step_profile(self):
        counts = step_profile(100, 10, 10)
        assert list(counts[:5]) == [100] * 5
        assert list(counts[5:]) == [10] * 5

    def test_step_minority_fraction(self):
        counts = step_profile(100, 10, 10, minority_fraction=0.2)
        assert (counts == 10).sum() == 2

    def test_apply_imbalance(self, rng):
        images = rng.random((300, 1, 2, 2))
        labels = np.repeat(np.arange(3), 100)
        ds = ArrayDataset(images, labels)
        out = apply_imbalance(ds, [100, 10, 1], rng)
        np.testing.assert_array_equal(out.class_counts(), [100, 10, 1])

    def test_apply_imbalance_insufficient_samples(self, rng):
        ds = ArrayDataset(np.zeros((4, 1, 2, 2)), np.array([0, 0, 1, 1]))
        with pytest.raises(ValueError):
            apply_imbalance(ds, [2, 5], rng)

    def test_imbalance_ratio(self):
        labels = np.array([0] * 100 + [1] * 4)
        assert imbalance_ratio(labels) == pytest.approx(25.0)


class TestSyntheticFamily:
    def test_images_in_unit_range(self, rng):
        family = SyntheticImageFamily(SyntheticConfig(num_classes=3))
        ds = family.sample(5, rng)
        assert ds.images.min() >= 0.0
        assert ds.images.max() <= 1.0

    def test_balanced_sampling(self, rng):
        family = SyntheticImageFamily(SyntheticConfig(num_classes=4))
        ds = family.sample(7, rng)
        np.testing.assert_array_equal(ds.class_counts(), [7, 7, 7, 7])

    def test_family_deterministic_given_seed(self, rng):
        cfg = SyntheticConfig(num_classes=3, seed=42)
        f1 = SyntheticImageFamily(cfg)
        f2 = SyntheticImageFamily(cfg)
        np.testing.assert_array_equal(f1.prototypes, f2.prototypes)
        np.testing.assert_array_equal(f1.basis, f2.basis)

    def test_classes_are_distinguishable(self, rng):
        """Within-class image distance must be below between-class distance."""
        cfg = SyntheticConfig(num_classes=5, within_class_std=0.5, overlap=0.0)
        family = SyntheticImageFamily(cfg)
        ds = family.sample(20, rng)
        flat = ds.images.reshape(len(ds), -1)
        centroids = np.stack([flat[ds.labels == c].mean(axis=0) for c in range(5)])
        within = np.mean(
            [
                np.linalg.norm(flat[ds.labels == c] - centroids[c], axis=1).mean()
                for c in range(5)
            ]
        )
        between = np.mean(
            [
                np.linalg.norm(centroids[c] - centroids[d])
                for c in range(5)
                for d in range(5)
                if c != d
            ]
        )
        assert between > within

    def test_train_test_same_distribution(self, rng):
        """Two independent draws should have similar class centroids."""
        family = SyntheticImageFamily(SyntheticConfig(num_classes=3))
        a = family.sample(50, np.random.default_rng(1))
        b = family.sample(50, np.random.default_rng(2))
        for c in range(3):
            ca = a.images[a.labels == c].mean(axis=0)
            cb = b.images[b.labels == c].mean(axis=0)
            assert np.abs(ca - cb).mean() < 0.05


class TestMakeDataset:
    def test_all_profiles_listed(self):
        assert set(list_datasets()) == {
            "cifar10_like",
            "svhn_like",
            "cifar100_like",
            "celeba_like",
        }

    def test_cifar10_like_structure(self):
        train, test, info = make_dataset("cifar10_like", scale="tiny", seed=0)
        assert info["num_classes"] == 10
        assert info["ratio"] == 100
        counts = train.class_counts(10)
        assert counts[0] == info["train_counts"][0]
        assert counts[0] / max(counts[-1], 1) >= 50  # near 100:1
        # Test set is balanced.
        assert len(set(test.class_counts(10))) == 1

    def test_celeba_like_structure(self):
        train, _, info = make_dataset("celeba_like", scale="tiny", seed=0)
        assert info["num_classes"] == 5
        assert info["ratio"] == 40

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            make_dataset("imagenet")

    def test_unknown_scale(self):
        with pytest.raises(KeyError):
            make_dataset("cifar10_like", scale="huge")

    def test_dict_scale(self):
        train, test, _ = make_dataset(
            "cifar10_like", scale={"n_max_train": 20, "n_test": 5}, seed=0
        )
        assert train.class_counts(10)[0] == 20
        assert test.class_counts(10)[0] == 5

    def test_seed_changes_cut_not_distribution(self):
        t1, _, _ = make_dataset("cifar10_like", scale="tiny", seed=0)
        t2, _, _ = make_dataset("cifar10_like", scale="tiny", seed=1)
        assert not np.array_equal(t1.images, t2.images)
        np.testing.assert_array_equal(t1.class_counts(10), t2.class_counts(10))

    def test_image_size_override(self):
        train, _, info = make_dataset("cifar10_like", scale="tiny", image_size=8)
        assert train.image_shape == (3, 8, 8)


class TestTransforms:
    def test_flip_all(self, rng):
        from repro.data import RandomHorizontalFlip

        images = rng.random((4, 3, 5, 5))
        out = RandomHorizontalFlip(p=1.0)(images, rng)
        np.testing.assert_allclose(out, images[:, :, :, ::-1])

    def test_flip_none(self, rng):
        from repro.data import RandomHorizontalFlip

        images = rng.random((4, 3, 5, 5))
        out = RandomHorizontalFlip(p=0.0)(images, rng)
        np.testing.assert_array_equal(out, images)

    def test_crop_preserves_shape(self, rng):
        from repro.data import RandomCrop

        images = rng.random((4, 3, 6, 6))
        out = RandomCrop(2)(images, rng)
        assert out.shape == images.shape

    def test_noise_changes_values(self, rng):
        from repro.data import GaussianNoise

        images = np.zeros((2, 1, 3, 3))
        out = GaussianNoise(0.1)(images, rng)
        assert np.abs(out).max() > 0

    def test_normalize(self):
        from repro.data import Normalize

        images = np.ones((2, 3, 2, 2))
        out = Normalize([1.0, 1.0, 1.0], [2.0, 2.0, 2.0])(images)
        np.testing.assert_allclose(out, 0.0)

    def test_compose_order(self, rng):
        from repro.data import Compose

        t = Compose([lambda im, r: im + 1, lambda im, r: im * 2])
        out = t(np.zeros((1, 1, 2, 2)), rng)
        np.testing.assert_allclose(out, 2.0)

    def test_invalid_params(self):
        from repro.data import GaussianNoise, Normalize, RandomCrop, RandomHorizontalFlip

        with pytest.raises(ValueError):
            RandomHorizontalFlip(p=2.0)
        with pytest.raises(ValueError):
            RandomCrop(-1)
        with pytest.raises(ValueError):
            GaussianNoise(-0.1)
        with pytest.raises(ValueError):
            Normalize([0.0], [0.0])
