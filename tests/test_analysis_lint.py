"""Tests for the repro.analysis lint engine: every rule gets a positive
(violating) and a negative (clean) fixture snippet, plus engine-level
behavior — noqa suppression, rule selection, output formats, CLI exit
codes, and the one-violation-per-rule fixture tree."""

import json
import textwrap

import pytest

from repro.analysis import LintEngine, all_rules, rule_index
from repro.analysis.__main__ import main as lint_main


def lint(source, select=None):
    """Lint a snippet with the full rule set; returns findings."""
    engine = LintEngine(select=select)
    findings, _ = engine.check_source(textwrap.dedent(source))
    return findings


def rule_ids(findings):
    return {f.rule for f in findings}


# ----------------------------------------------------------------------
# Per-rule positive/negative fixtures
# ----------------------------------------------------------------------
class TestRNG001BareNumpyRandom:
    def test_flags_bare_calls(self):
        findings = lint(
            """
            import numpy as np
            x = np.random.rand(3)
            y = np.random.choice([1, 2])
            """
        )
        assert sum(1 for f in findings if f.rule == "RNG001") == 2

    def test_allows_modern_api(self):
        findings = lint(
            """
            import numpy as np
            rng = np.random.default_rng(0)
            x = rng.random(3)
            seq = np.random.SeedSequence(7)
            """
        )
        assert "RNG001" not in rule_ids(findings)


class TestRNG002UnseededGenerator:
    def test_flags_unseeded(self):
        findings = lint(
            """
            import numpy as np
            rng = np.random.default_rng()
            """
        )
        assert "RNG002" in rule_ids(findings)

    def test_allows_seeded(self):
        findings = lint(
            """
            import numpy as np
            rng = np.random.default_rng(42)
            other = np.random.default_rng(seed)
            """
        )
        assert "RNG002" not in rule_ids(findings)


class TestMUT001MutableDefault:
    def test_flags_literals_and_constructors(self):
        findings = lint(
            """
            def f(a, items=[], table={}, s=set()):
                return a
            """
        )
        assert sum(1 for f in findings if f.rule == "MUT001") == 3

    def test_allows_none_default(self):
        findings = lint(
            """
            def f(a, items=None, n=3, name="x"):
                items = items if items is not None else []
                return a
            """
        )
        assert "MUT001" not in rule_ids(findings)


class TestMUT002ParamInPlaceMutation:
    def test_flags_subscript_write(self):
        findings = lint(
            """
            def f(x):
                x[0] = 1.0
                return x
            """
        )
        assert "MUT002" in rule_ids(findings)

    def test_flags_augmented_assign(self):
        findings = lint(
            """
            def f(x, scale):
                x *= scale
                return x
            """
        )
        assert "MUT002" in rule_ids(findings)

    def test_allows_copy_then_mutate(self):
        findings = lint(
            """
            import numpy as np
            def f(x):
                x = np.array(x, copy=True)
                x[0] = 1.0
                x += 2.0
                return x
            """
        )
        assert "MUT002" not in rule_ids(findings)

    def test_allows_local_mutation(self):
        findings = lint(
            """
            def f(x):
                out = [0] * 3
                out[0] = x
                return out
            """
        )
        assert "MUT002" not in rule_ids(findings)


class TestGRAD001MissingNoGrad:
    def test_flags_eval_without_no_grad(self):
        findings = lint(
            """
            def predict(model, images):
                logits = model(images)
                return logits
            """
        )
        assert "GRAD001" in rule_ids(findings)

    def test_allows_eval_with_no_grad(self):
        findings = lint(
            """
            from repro.tensor import no_grad

            def predict(model, images):
                with no_grad():
                    logits = model(images)
                return logits
            """
        )
        assert "GRAD001" not in rule_ids(findings)

    def test_ignores_training_functions(self):
        findings = lint(
            """
            def train_step(model, images):
                return model(images)
            """
        )
        assert "GRAD001" not in rule_ids(findings)


class TestTAPE001DataEscape:
    def test_flags_raw_data_into_save(self):
        findings = lint(
            """
            import numpy as np
            def checkpoint(tensor, path):
                np.save(path, tensor.data)
            """
        )
        assert "TAPE001" in rule_ids(findings)

    def test_allows_copied_data(self):
        findings = lint(
            """
            import numpy as np
            def checkpoint(tensor, path):
                np.save(path, tensor.data.copy())
            """
        )
        assert "TAPE001" not in rule_ids(findings)


class TestDTYPE001TensorDtype:
    def test_flags_float32_construction(self):
        findings = lint(
            """
            import numpy as np
            from repro.tensor import Tensor
            t = Tensor([1.0], dtype=np.float32)
            u = Tensor([1.0], dtype="float16")
            """
        )
        assert sum(1 for f in findings if f.rule == "DTYPE001") == 2

    def test_allows_float64(self):
        findings = lint(
            """
            import numpy as np
            from repro.tensor import Tensor
            t = Tensor([1.0], dtype=np.float64)
            u = Tensor([1.0])
            """
        )
        assert "DTYPE001" not in rule_ids(findings)


class TestVAL001SamplerValidation:
    def test_flags_unvalidated_fit_resample(self):
        findings = lint(
            """
            class BadSampler:
                def fit_resample(self, x, y):
                    return x, y
            """
        )
        assert "VAL001" in rule_ids(findings)

    def test_allows_validate_xy(self):
        findings = lint(
            """
            from repro._validation import validate_xy

            class GoodSampler:
                def fit_resample(self, x, y):
                    x, y = validate_xy(x, y)
                    return x, y
            """
        )
        assert "VAL001" not in rule_ids(findings)

    def test_allows_delegation(self):
        findings = lint(
            """
            class Wrapper:
                def fit_resample(self, x, y):
                    return self.inner.fit_resample(x, y)
            """
        )
        assert "VAL001" not in rule_ids(findings)


class TestEXP001ExportDrift:
    def test_flags_phantom_export(self):
        findings = lint(
            """
            __all__ = ["missing_thing"]
            """
        )
        assert "EXP001" in rule_ids(findings)

    def test_flags_unexported_public_def(self):
        findings = lint(
            """
            __all__ = ["f"]

            def f():
                pass

            def g():
                pass
            """
        )
        messages = [f.message for f in findings if f.rule == "EXP001"]
        assert any("'g'" in m for m in messages)

    def test_clean_module_passes(self):
        findings = lint(
            """
            __all__ = ["f", "CONST"]

            CONST = 3

            def f():
                pass

            def _private():
                pass
            """
        )
        assert "EXP001" not in rule_ids(findings)

    def test_no_all_is_ignored(self):
        findings = lint(
            """
            def anything():
                pass
            """
        )
        assert "EXP001" not in rule_ids(findings)


# ----------------------------------------------------------------------
# Suppression & engine behavior
# ----------------------------------------------------------------------
class TestNoqaSuppression:
    def test_targeted_noqa_suppresses(self, tmp_path):
        mod = tmp_path / "m.py"
        mod.write_text(
            "import numpy as np\n"
            "x = np.random.rand(3)  # repro: noqa[RNG001] legacy fixture\n"
        )
        report = LintEngine().run([tmp_path])
        assert not report.findings
        assert len(report.suppressed) == 1
        assert report.suppressed[0].rule == "RNG001"

    def test_blanket_noqa_suppresses(self, tmp_path):
        mod = tmp_path / "m.py"
        mod.write_text(
            "import numpy as np\nx = np.random.rand(3)  # repro: noqa\n"
        )
        report = LintEngine().run([tmp_path])
        assert not report.findings

    def test_wrong_rule_noqa_does_not_suppress(self, tmp_path):
        mod = tmp_path / "m.py"
        mod.write_text(
            "import numpy as np\n"
            "x = np.random.rand(3)  # repro: noqa[MUT001]\n"
        )
        report = LintEngine().run([tmp_path])
        assert "RNG001" in rule_ids(report.findings)

    def test_unused_noqa_flagged(self, tmp_path):
        mod = tmp_path / "m.py"
        mod.write_text("x = 1  # repro: noqa[RNG001]\n")
        report = LintEngine().run([tmp_path])
        assert rule_ids(report.findings) == {"NOQA001"}

    def test_noqa_inside_string_is_not_a_suppression(self, tmp_path):
        mod = tmp_path / "m.py"
        mod.write_text('DOC = "example:  # repro: noqa[RNG001]"\n')
        report = LintEngine().run([tmp_path])
        assert not report.findings


class TestRES001NonAtomicArtifactWrite:
    def test_flags_numpy_writers(self):
        findings = lint(
            """
            import numpy as np
            def dump(path, arrays):
                np.savez(path, **arrays)
                np.savez_compressed(path, **arrays)
                np.save(path, arrays["x"])
            """
        )
        assert sum(1 for f in findings if f.rule == "RES001") == 3

    def test_flags_write_mode_open(self):
        findings = lint(
            """
            def dump(path, payload):
                with open(path, "wb") as fh:
                    fh.write(payload)
                with open(path, mode="a") as fh:
                    fh.write("tail")
            """
        )
        assert sum(1 for f in findings if f.rule == "RES001") == 2

    def test_allows_reads_and_dynamic_modes(self):
        findings = lint(
            """
            def load(path, mode):
                with open(path) as fh:
                    first = fh.read()
                with open(path, "rb") as fh:
                    second = fh.read()
                with open(path, mode) as fh:
                    third = fh.read()
                return first, second, third
            """
        )
        assert "RES001" not in rule_ids(findings)

    def test_atomic_writer_is_clean(self):
        findings = lint(
            """
            from repro.utils.serialization import atomic_write_json, save_arrays
            def dump(path, arrays, meta):
                save_arrays(path, arrays)
                atomic_write_json(path, meta)
            """
        )
        assert "RES001" not in rule_ids(findings)


class TestRES002SwallowedException:
    def test_flags_bare_except(self):
        findings = lint(
            """
            def risky():
                try:
                    return 1
                except:
                    return 0
            """
        )
        assert "RES002" in rule_ids(findings)

    def test_flags_pass_only_handler(self):
        findings = lint(
            """
            def risky():
                try:
                    return 1
                except ValueError:
                    pass
            """
        )
        assert "RES002" in rule_ids(findings)

    def test_finding_anchors_on_except_line(self):
        findings = lint(
            "def risky():\n"
            "    try:\n"
            "        return 1\n"
            "    except ValueError:\n"
            "        pass\n"
        )
        res = [f for f in findings if f.rule == "RES002"]
        assert res and res[0].line == 4

    def test_allows_handlers_that_act(self):
        findings = lint(
            """
            def risky(log):
                try:
                    return 1
                except ValueError as exc:
                    log.append(exc)
                    raise
            """
        )
        assert "RES002" not in rule_ids(findings)

    def test_noqa_on_except_line_suppresses(self, tmp_path):
        mod = tmp_path / "m.py"
        mod.write_text(
            "def risky():\n"
            "    try:\n"
            "        return 1\n"
            "    except ValueError:  # repro: noqa[RES002] probe\n"
            "        pass\n"
        )
        report = LintEngine().run([tmp_path])
        assert "RES002" not in rule_ids(report.findings)
        assert "NOQA001" not in rule_ids(report.findings)
        assert any(f.rule == "RES002" for f in report.suppressed)


class TestRES003RawCheckpointIO:
    def test_flags_direct_np_load(self):
        findings = lint(
            """
            import numpy as np
            def restore(path):
                return np.load(path)
            """
        )
        assert "RES003" in rule_ids(findings)

    def test_flags_direct_np_savez_compressed(self):
        findings = lint(
            """
            import numpy as np
            def persist(path, x):
                np.savez_compressed(path, x=x)
            """
        )
        assert "RES003" in rule_ids(findings)

    def test_allows_serialization_helpers(self):
        findings = lint(
            """
            from repro.utils.serialization import load_arrays, save_arrays
            def roundtrip(path, arrays):
                save_arrays(path, arrays)
                return load_arrays(path)
            """
        )
        assert "RES003" not in rule_ids(findings)

    def test_allows_unrelated_np_calls(self):
        findings = lint(
            """
            import numpy as np
            x = np.zeros(3)
            y = np.loadtxt
            """
        )
        assert "RES003" not in rule_ids(findings)

    def test_serialization_module_is_exempt(self, tmp_path):
        pkg = tmp_path / "utils"
        pkg.mkdir()
        (pkg / "serialization.py").write_text(
            "import numpy as np\n\n"
            "def _load(path):\n    return np.load(path)\n"
        )
        report = LintEngine().run([pkg])
        assert "RES003" not in rule_ids(report.findings)

    def test_other_modules_are_not_exempt(self, tmp_path):
        (tmp_path / "loader.py").write_text(
            "import numpy as np\ndata = np.load('x.npz')\n"
        )
        report = LintEngine().run([tmp_path])
        assert "RES003" in rule_ids(report.findings)


class TestOBS001RawClock:
    def test_flags_raw_clock_reads(self):
        findings = lint(
            """
            import time
            def run():
                t0 = time.perf_counter()
                stamp = time.time()
                return time.perf_counter() - t0, stamp
            """
        )
        assert sum(1 for f in findings if f.rule == "OBS001") == 3

    def test_allows_telemetry_clock(self):
        findings = lint(
            """
            from repro.telemetry import monotonic, wall_time
            def run():
                t0 = monotonic()
                return monotonic() - t0, wall_time()
            """
        )
        assert "OBS001" not in rule_ids(findings)

    def test_telemetry_package_is_exempt(self, tmp_path):
        pkg = tmp_path / "telemetry"
        pkg.mkdir()
        (pkg / "clock.py").write_text(
            "import time\n\ndef monotonic():\n    return time.perf_counter()\n"
        )
        report = LintEngine().run([pkg])
        assert "OBS001" not in rule_ids(report.findings)

    def test_other_packages_are_not_exempt(self, tmp_path):
        mod = tmp_path / "pipeline.py"
        mod.write_text("import time\nt0 = time.monotonic()\n")
        report = LintEngine().run([tmp_path])
        assert "OBS001" in rule_ids(report.findings)


class TestPAR001DirectMultiprocessing:
    def test_flags_multiprocessing_import(self):
        findings = lint("import multiprocessing\n")
        assert "PAR001" in rule_ids(findings)

    def test_flags_concurrent_futures_import(self):
        findings = lint(
            "from concurrent.futures import ProcessPoolExecutor\n"
        )
        assert "PAR001" in rule_ids(findings)

    def test_flags_os_fork_call(self):
        findings = lint(
            """
            import os
            def spawn():
                return os.fork()
            """
        )
        assert "PAR001" in rule_ids(findings)

    def test_allows_repro_parallel_usage(self):
        findings = lint(
            """
            from repro.parallel import parallel_map
            def run(fn, items):
                return parallel_map(fn, items, max_workers=4)
            """
        )
        assert "PAR001" not in rule_ids(findings)

    def test_parallel_package_is_exempt(self, tmp_path):
        pkg = tmp_path / "parallel"
        pkg.mkdir()
        (pkg / "pool.py").write_text(
            "import os\n\ndef spawn():\n    return os.fork()\n"
        )
        report = LintEngine().run([pkg])
        assert "PAR001" not in rule_ids(report.findings)

    def test_other_packages_are_not_exempt(self, tmp_path):
        mod = tmp_path / "runners.py"
        mod.write_text("import multiprocessing\n")
        report = LintEngine().run([tmp_path])
        assert "PAR001" in rule_ids(report.findings)


class TestSRV001RawSocketServer:
    def test_flags_socket_import(self):
        findings = lint("import socket\n")
        assert "SRV001" in rule_ids(findings)

    def test_flags_socketserver_import(self):
        findings = lint("import socketserver\n")
        assert "SRV001" in rule_ids(findings)

    def test_flags_http_server_import(self):
        findings = lint("from http.server import HTTPServer\n")
        assert "SRV001" in rule_ids(findings)
        findings = lint("import http.server\n")
        assert "SRV001" in rule_ids(findings)
        findings = lint("from http import server\n")
        assert "SRV001" in rule_ids(findings)

    def test_allows_http_status_enum(self):
        findings = lint(
            "import http\nfrom http import HTTPStatus\ncode = HTTPStatus.OK\n"
        )
        assert "SRV001" not in rule_ids(findings)

    def test_allows_repro_serve_usage(self):
        findings = lint(
            """
            from repro.serve import ServeClient
            def ping(path):
                return ServeClient(path).status()
            """
        )
        assert "SRV001" not in rule_ids(findings)

    def test_serve_package_is_exempt(self, tmp_path):
        pkg = tmp_path / "serve"
        pkg.mkdir()
        (pkg / "service.py").write_text(
            "import socket\n\ndef listen():\n    return socket.socket()\n"
        )
        report = LintEngine().run([pkg])
        assert "SRV001" not in rule_ids(report.findings)

    def test_other_packages_are_not_exempt(self, tmp_path):
        mod = tmp_path / "runners.py"
        mod.write_text("import socketserver\n")
        report = LintEngine().run([tmp_path])
        assert "SRV001" in rule_ids(report.findings)


class TestSRV002JournalFileAccess:
    def test_flags_open_of_journal_variable(self):
        findings = lint(
            "def tail(journal_path):\n"
            "    return open(journal_path).read()\n"
        )
        assert "SRV002" in rule_ids(findings)

    def test_flags_open_of_journal_literal(self):
        findings = lint('handle = open("serve/journal.jsonl")\n')
        assert "SRV002" in rule_ids(findings)

    def test_flags_os_and_io_open(self):
        findings = lint(
            "import os\nfd = os.open(journal_file, os.O_RDONLY)\n"
        )
        assert "SRV002" in rule_ids(findings)
        findings = lint("import io\nh = io.open(cfg.journal)\n")
        assert "SRV002" in rule_ids(findings)

    def test_flags_composed_journal_path(self):
        findings = lint(
            'def seg(base):\n    return open("%s.%08d" % (base.journal, 1))\n'
        )
        assert "SRV002" in rule_ids(findings)

    def test_allows_unrelated_open(self):
        findings = lint(
            "def load(config_path):\n    return open(config_path).read()\n"
        )
        assert "SRV002" not in rule_ids(findings)

    def test_journal_module_is_exempt(self, tmp_path):
        pkg = tmp_path / "serve"
        pkg.mkdir()
        (pkg / "journal.py").write_text(
            "def tail(journal_path):\n"
            "    return open(journal_path).read()\n"
        )
        report = LintEngine().run([pkg])
        assert "SRV002" not in rule_ids(report.findings)

    def test_other_serve_modules_are_not_exempt(self, tmp_path):
        pkg = tmp_path / "serve"
        pkg.mkdir()
        (pkg / "service.py").write_text(
            "def tail(journal_path):\n"
            "    return open(journal_path).read()\n"
        )
        report = LintEngine().run([pkg])
        assert "SRV002" in rule_ids(report.findings)


class TestEngineConfig:
    def test_select_restricts_rules(self):
        findings = lint(
            """
            import numpy as np
            def f(items=[]):
                return np.random.rand(3)
            """,
            select=["MUT001"],
        )
        assert rule_ids(findings) == {"MUT001"}

    def test_ignore_disables_rule(self):
        engine = LintEngine(ignore=["RNG001"])
        findings, _ = engine.check_source("import numpy as np\nx = np.random.rand(3)\n")
        assert "RNG001" not in rule_ids(findings)

    def test_unknown_rule_id_rejected(self):
        with pytest.raises(ValueError):
            LintEngine(select=["NOPE999"])

    def test_registry_has_twenty_one_rules(self):
        assert len(all_rules()) == 21
        assert len(rule_index()) == 21
        flow = [r for r in all_rules() if r.requires_project]
        assert {r.id for r in flow} == {"FLOW-RNG", "FLOW-DTYPE", "FLOW-FORK"}


# ----------------------------------------------------------------------
# Acceptance: fixture tree with one violation per rule, both formats
# ----------------------------------------------------------------------
VIOLATION_FIXTURES = {
    "RNG001": "import numpy as np\nx = np.random.rand(3)\n",
    "RNG002": "import numpy as np\nrng = np.random.default_rng()\n",
    "MUT001": "def f(items=[]):\n    return items\n",
    "MUT002": "def f(x):\n    x[0] = 1\n",
    "GRAD001": "def predict(model, images):\n    return model(images)\n",
    "TAPE001": (
        "import numpy as np\n"
        "def f(t, path):\n    np.save(path, t.data)\n"
    ),
    "DTYPE001": (
        "import numpy as np\nfrom repro.tensor import Tensor\n"
        "t = Tensor([1.0], dtype=np.float32)\n"
    ),
    "VAL001": (
        "class S:\n    def fit_resample(self, x, y):\n        return x, y\n"
    ),
    "EXP001": '__all__ = ["ghost"]\n',
    "OBS001": "import time\nt0 = time.perf_counter()\n",
    "PAR001": "import multiprocessing\npool = multiprocessing.Pool(4)\n",
    "SRV001": "import socketserver\n",
    "SRV002": (
        "def tail(journal_path):\n"
        "    return open(journal_path).read()\n"
    ),
    "EVAL001": 'import sqlite3\nconn = sqlite3.connect("x.db")\n',
    "NOQA001": "x = 1  # repro: noqa[RNG001]\n",
    "RES001": (
        "def dump(path, payload):\n"
        '    with open(path, "w") as fh:\n'
        "        fh.write(payload)\n"
    ),
    "RES002": (
        "def risky():\n    try:\n        return 1\n"
        "    except ValueError:\n        pass\n"
    ),
    "RES003": (
        "import numpy as np\n"
        "def restore(path):\n    return np.load(path)\n"
    ),
}


@pytest.fixture
def violation_tree(tmp_path):
    for rid, source in VIOLATION_FIXTURES.items():
        (tmp_path / ("viol_%s.py" % rid.lower())).write_text(source)
    return tmp_path


class TestViolationTree:
    def test_one_finding_per_rule(self, violation_tree):
        report = LintEngine().run([violation_tree])
        assert rule_ids(report.findings) == set(VIOLATION_FIXTURES)

    def test_text_format_has_file_line(self, violation_tree):
        report = LintEngine().run([violation_tree])
        text = report.format_text()
        for f in report.findings:
            assert "%s:%d:" % (f.path, f.line) in text

    def test_json_format_has_file_line(self, violation_tree):
        report = LintEngine().run([violation_tree])
        payload = json.loads(report.format_json())
        assert payload["errors"] > 0
        assert set(f["rule"] for f in payload["findings"]) == set(VIOLATION_FIXTURES)
        for f in payload["findings"]:
            assert f["path"] and f["line"] >= 1

    def test_cli_exits_nonzero_text(self, violation_tree, capsys):
        code = lint_main(["--strict", str(violation_tree)])
        assert code == 1
        out = capsys.readouterr().out
        assert "RNG001" in out and ":%d:" % 2 in out

    def test_cli_exits_nonzero_json(self, violation_tree, capsys):
        code = lint_main(["--strict", "--format", "json", str(violation_tree)])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["findings"]) >= len(VIOLATION_FIXTURES)

    def test_cli_clean_tree_exits_zero(self, tmp_path, capsys):
        (tmp_path / "clean.py").write_text('"""Clean module."""\nX = 1\n')
        assert lint_main(["--strict", str(tmp_path)]) == 0

    def test_cli_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rid in VIOLATION_FIXTURES:
            assert rid in out

    def test_cli_bad_path_exits_two(self, tmp_path, capsys):
        assert lint_main([str(tmp_path / "nope.txt")]) == 2
