"""Tests for classifier weight-norm analysis (Figure 5 machinery)."""

import numpy as np
import pytest

from repro.core import classifier_weight_norms, norm_imbalance
from repro.nn import Linear


class TestWeightNorms:
    def test_from_matrix(self):
        w = np.array([[3.0, 4.0], [0.0, 1.0]])
        np.testing.assert_allclose(classifier_weight_norms(w), [5.0, 1.0])

    def test_from_linear_layer(self):
        layer = Linear(4, 3, rng=np.random.default_rng(0))
        norms = classifier_weight_norms(layer)
        assert norms.shape == (3,)
        np.testing.assert_allclose(
            norms, np.linalg.norm(layer.weight.data, axis=1)
        )

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            classifier_weight_norms(np.zeros(5))

    def test_imbalanced_training_produces_decaying_norms(self):
        """Training a linear softmax head on imbalanced data yields larger
        norms for majority classes — the Figure-5 baseline phenomenon."""
        from repro.core import finetune_classifier
        from repro.nn import SmallConvNet

        rng = np.random.default_rng(4)
        model = SmallConvNet(num_classes=3, width=4, rng=rng)
        emb = np.concatenate(
            [
                rng.normal([2, 0, 0, 0] * 4, 1.0, (200, 16)),
                rng.normal([0, 2, 0, 0] * 4, 1.0, (20, 16)),
                rng.normal([0, 0, 2, 0] * 4, 1.0, (4, 16)),
            ]
        )
        labels = np.array([0] * 200 + [1] * 20 + [2] * 4)
        finetune_classifier(
            model, emb, labels, epochs=30, reinitialize=True, rng=rng
        )
        norms = classifier_weight_norms(model.classifier)
        assert norms[0] > norms[2]


class TestNormImbalance:
    def test_uniform_profile(self):
        out = norm_imbalance([2.0, 2.0, 2.0])
        assert out["ratio"] == pytest.approx(1.0)
        assert out["cv"] == pytest.approx(0.0)

    def test_skewed_profile(self):
        out = norm_imbalance([4.0, 1.0])
        assert out["ratio"] == pytest.approx(4.0)
        assert out["cv"] > 0

    def test_zero_norm_ratio_inf(self):
        assert norm_imbalance([1.0, 0.0])["ratio"] == float("inf")

    def test_invalid(self):
        with pytest.raises(ValueError):
            norm_imbalance([])
        with pytest.raises(ValueError):
            norm_imbalance([-1.0, 1.0])
