"""Using the EOS framework on your own dataset.

The library's pipeline works on any numpy image array: wrap your data
in an ``ArrayDataset``, pick an architecture and a loss, and run the
three phases.  This example fabricates a small "sensor grid" dataset —
8x8 single-channel heatmaps from three machine states, where the rare
fault state (class 2) has only a handful of training examples — and
walks through the full workflow including checkpointing.

Run:  python examples/custom_dataset.py
"""

import numpy as np

from repro.core import EOS, ThreePhaseTrainer, generalization_gap, extract_features
from repro.data import ArrayDataset
from repro.losses import LDAMLoss
from repro.metrics import classification_report
from repro.nn import SmallConvNet
from repro.optim import SGD
from repro.utils import save_model


def make_sensor_data(counts, rng):
    """Three machine states as structured 8x8 heatmaps + noise."""
    yy, xx = np.meshgrid(np.arange(8), np.arange(8), indexing="ij")
    patterns = [
        np.sin(xx / 2.0),                   # normal operation: smooth bands
        np.sin(xx / 2.0 + yy / 2.0),        # degraded: diagonal bands
        # fault: the normal bands plus a weak local hotspot (overlaps
        # class 0, so the rare class is genuinely hard).
        np.sin(xx / 2.0)
        + np.exp(-((xx - 5) ** 2 + (yy - 2) ** 2) / 4.0) * 1.2,
    ]
    images, labels = [], []
    for state, n in enumerate(counts):
        base = patterns[state]
        batch = base[None] + rng.normal(0.0, 0.8, size=(n, 8, 8))
        images.append(batch[:, None, :, :])  # add the channel axis
        labels += [state] * n
    images = np.concatenate(images)
    # Normalize with *fixed* constants (patterns span ~[-2, 3]): per-call
    # min/max would shift train and test differently because their class
    # proportions differ.
    images = np.clip((images + 2.0) / 5.0, 0.0, 1.0)
    return ArrayDataset(images, np.array(labels))


def main():
    rng = np.random.default_rng(0)
    train = make_sensor_data(counts=[300, 60, 8], rng=rng)     # imbalanced
    test = make_sensor_data(counts=[100, 100, 100], rng=rng)   # balanced

    print("train class counts:", train.class_counts())

    # Single-channel input; LDAM loss to help the rare fault state.
    model = SmallConvNet(num_classes=3, in_channels=1, width=6, rng=rng)
    loss = LDAMLoss(train.class_counts(), drw_epoch=8)
    trainer = ThreePhaseTrainer(
        model,
        loss,
        SGD(model.parameters(), lr=0.05, momentum=0.9, weight_decay=5e-4),
        sampler=EOS(k_neighbors=10, random_state=0),
    )

    trainer.train_phase1(train, epochs=15, rng=rng)
    print("\nphase-1 metrics:", trainer.phase1.evaluate(test))

    train_fe = trainer.extract_embeddings(train)
    test_fe = extract_features(model, test.images)
    gap = generalization_gap(train_fe, train.labels, test_fe, test.labels, 3)
    print("per-class generalization gap:", np.round(gap["per_class"], 3))
    print("(the fault class with 8 samples should show the widest gap)")

    trainer.resample_embeddings()
    trainer.finetune(epochs=10, rng=rng)
    print("\nafter EOS fine-tuning:", trainer.evaluate(test))
    print()
    print(classification_report(test.labels, trainer.predict(test.images)))

    save_model(model, "/tmp/sensor_model.npz")
    print("\ncheckpoint written to /tmp/sensor_model.npz")


if __name__ == "__main__":
    main()
