"""Full reproduction driver: regenerate every table and figure.

Runs all of the paper's experiments (Tables I-V, Figures 3-7, the
runtime comparison and the pixel-vs-embedding ablation) at a chosen
scale and prints each reproduced table.  At the default "small" scale on
one CPU core expect roughly 10-20 minutes for the full set; use
``--experiments`` to run a subset and ``--datasets`` to widen coverage.

Run:
    python examples/reproduce_paper.py                       # everything
    python examples/reproduce_paper.py --experiments t2 f3   # a subset
    python examples/reproduce_paper.py --datasets cifar10_like svhn_like
"""

import argparse
import time

from repro.experiments import (
    ExtractorCache,
    bench_config,
    run_eos_pixel_vs_embedding,
    run_figure3,
    run_figure4,
    run_figure5,
    run_figure6,
    run_figure7,
    run_runtime_comparison,
    run_table1,
    run_table2,
    run_table3,
    run_table4,
    run_table5,
)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="small", choices=("tiny", "small", "medium"))
    parser.add_argument(
        "--datasets",
        nargs="+",
        default=["cifar10_like"],
        help="dataset profiles for the multi-dataset tables",
    )
    parser.add_argument(
        "--experiments",
        nargs="+",
        default=None,
        help="subset to run: t1-t5, f3-f7, rt, px",
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    config = bench_config(scale=args.scale, seed=args.seed)
    cache = ExtractorCache()
    datasets = tuple(args.datasets)

    experiments = {
        "t1": ("Table I (pre vs post over-sampling)",
               lambda: run_table1(config, datasets=datasets, cache=cache)),
        "t2": ("Table II (losses x samplers)",
               lambda: run_table2(config, datasets=datasets, cache=cache)),
        "t3": ("Table III (GAN comparison)",
               lambda: run_table3(config, datasets=datasets, cache=cache)),
        "t4": ("Table IV (EOS K sweep)",
               lambda: run_table4(config, datasets=datasets, cache=cache)),
        "t5": ("Table V (architectures)",
               lambda: run_table5(config, cache=cache)),
        "f3": ("Figure 3 (gap curves)",
               lambda: run_figure3(config, cache=cache)),
        "f4": ("Figure 4 (TP vs FP gap)",
               lambda: run_figure4(config, datasets=datasets, cache=cache)),
        "f5": ("Figure 5 (weight norms)",
               lambda: run_figure5(config, cache=cache)),
        "f6": ("Figure 6 (t-SNE boundary)",
               lambda: run_figure6(config, cache=cache)),
        "f7": ("Figure 7 (fine-tune epochs)",
               lambda: run_figure7(config, cache=cache)),
        "rt": ("Runtime comparison (Section V-E2)",
               lambda: run_runtime_comparison(config)),
        "px": ("EOS pixel vs embedding (Section V-E3)",
               lambda: run_eos_pixel_vs_embedding(config, cache=cache)),
    }

    selected = args.experiments or list(experiments)
    unknown = [key for key in selected if key not in experiments]
    if unknown:
        parser.error("unknown experiments: %s" % ", ".join(unknown))

    for key in selected:
        title, runner = experiments[key]
        print("=" * 72)
        print("%s  [%s]" % (title, key))
        print("=" * 72)
        start = time.perf_counter()
        out = runner()
        print(out["report"])
        print("(%.1fs)\n" % (time.perf_counter() - start))


if __name__ == "__main__":
    main()
