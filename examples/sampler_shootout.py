"""Sampler shoot-out: every over-sampler in the library on one dataset.

Compares classic interpolative methods (ROS, SMOTE, Borderline-SMOTE,
Balanced-SVM, ADASYN), GAN-based methods (CGAN, BAGAN, GAMO), and EOS —
all applied in the learned embedding space of the same trained extractor,
with identical classifier fine-tuning.  Reports the paper's metric
triple plus wall-clock resampling+tuning cost (the paper's efficiency
argument against GANs).

Run:  python examples/sampler_shootout.py [--dataset svhn_like]
"""

import argparse

from repro.experiments import bench_config, evaluate_sampler
from repro.experiments.pipeline import train_phase1
from repro.utils import format_float, format_table

SAMPLERS = (
    "none",
    "ros",
    "smote",
    "bsmote",
    "balsvm",
    "adasyn",
    "gamo",
    "bagan",
    "cgan",
    "eos",
)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="cifar10_like")
    parser.add_argument("--scale", default="small", choices=("tiny", "small", "medium"))
    parser.add_argument("--loss", default="ce", choices=("ce", "asl", "focal", "ldam"))
    args = parser.parse_args()

    config = bench_config(dataset=args.dataset, scale=args.scale)
    print("training the %s extractor on %s (%s scale)..."
          % (args.loss, args.dataset, args.scale))
    artifacts = train_phase1(config, args.loss)

    rows = []
    for name in SAMPLERS:
        details = evaluate_sampler(artifacts, name, return_details=True)
        metrics = details["metrics"]
        rows.append(
            [
                name,
                format_float(metrics["bac"]),
                format_float(metrics["gm"]),
                format_float(metrics["fm"]),
                "%.2f" % details["seconds"],
            ]
        )
    print()
    print(
        format_table(
            ["sampler", "BAC", "GM", "FM", "resample+tune (s)"],
            rows,
            title="Over-samplers in embedding space (%s, %s loss)"
            % (args.dataset, args.loss),
        )
    )
    print(
        "\nReading: all balancing methods lift BAC well above the 'none'"
        "\nbaseline; EOS is at the top of the band at a fraction of the"
        "\nGAN methods' cost."
    )


if __name__ == "__main__":
    main()
