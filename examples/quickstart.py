"""Quickstart: the full EOS three-phase pipeline in ~40 lines.

Trains a small CNN on an exponentially imbalanced synthetic dataset
(100:1), then balances the learned feature embeddings with EOS and
fine-tunes the classifier head — the paper's framework end-to-end.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import EOS, ThreePhaseTrainer
from repro.data import make_dataset
from repro.losses import CrossEntropyLoss
from repro.metrics import classification_report
from repro.nn import build_model
from repro.optim import SGD


def main():
    rng = np.random.default_rng(0)

    # An imbalanced train set (100:1 exponential profile) + balanced test.
    train, test, info = make_dataset("cifar10_like", scale="small", seed=0)
    print("train counts per class:", info["train_counts"])

    model = build_model(
        "smallconvnet", num_classes=info["num_classes"], width=6, rng=rng
    )
    trainer = ThreePhaseTrainer(
        model,
        CrossEntropyLoss(),
        SGD(model.parameters(), lr=0.05, momentum=0.9, weight_decay=5e-4),
        sampler=EOS(k_neighbors=10, random_state=0),
    )

    # Phase 1: end-to-end training on the imbalanced data.
    trainer.train_phase1(train, epochs=20, batch_size=32, rng=rng)
    print("\nafter phase 1 (imbalanced training):")
    print("  %s" % trainer.phase1.evaluate(test))

    # Phase 2: extract embeddings, balance them with EOS.
    trainer.extract_embeddings(train)
    emb, labels = trainer.resample_embeddings()
    print("\nbalanced embedding set: %d samples (was %d)" % (len(labels), len(train)))

    # Phase 3: fine-tune only the classifier head (10 epochs, as in the paper).
    trainer.finetune(epochs=10, rng=rng)
    print("\nafter phase 3 (EOS + head fine-tuning):")
    print("  %s" % trainer.evaluate(test))

    print("\nper-class report:")
    print(classification_report(test.labels, trainer.predict(test.images)))
    print("\nphase timings (s):", {k: round(v, 2) for k, v in trainer.timings.items()})


if __name__ == "__main__":
    main()
