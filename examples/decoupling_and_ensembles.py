"""Head-retraining strategies compared: EOS vs the decoupling family.

The paper frames EOS against the "decouple representation and
classifier" line of work (Kang et al.).  This example trains one
extractor, then compares every head strategy the library offers on the
same embeddings:

* raw phase-1 head (baseline)
* cRT — re-init + class-balanced resampled re-training
* tau-normalization — rescale class weight norms, no training
* NCM — nearest class mean, no head at all
* EOS fine-tuning — the paper's phase 3
* EOS-view head ensemble — phase 3 extended to 5 averaged heads

Run:  python examples/decoupling_and_ensembles.py
"""

import numpy as np

from repro.core import EOS, NearestClassMean, crt_retrain, tau_normalize
from repro.core.training import predict_logits
from repro.ensemble import BalancedHeadEnsemble
from repro.experiments import bench_config, evaluate_sampler
from repro.experiments.pipeline import train_phase1
from repro.metrics import evaluate_predictions
from repro.nn import Linear
from repro.utils import format_float, format_table


def main():
    config = bench_config(scale="small")
    print("training the extractor (CE loss, %s)..." % config.dataset)
    artifacts = train_phase1(config, "ce")
    num_classes = artifacts.info["num_classes"]
    feature_dim = artifacts.train_embeddings.shape[1]

    def score_model():
        preds = predict_logits(
            artifacts.model, artifacts.test.images
        ).argmax(axis=1)
        return evaluate_predictions(artifacts.test.labels, preds, num_classes)

    rows = {}
    rows["baseline (phase-1 head)"] = evaluate_sampler(artifacts, "none")

    artifacts.restore_head()
    crt_retrain(
        artifacts.model,
        artifacts.train_embeddings,
        artifacts.train.labels,
        epochs=10,
        rng=np.random.default_rng(0),
    )
    rows["cRT"] = score_model()

    artifacts.restore_head()
    tau_normalize(artifacts.model.classifier, tau=1.0)
    rows["tau-normalization"] = score_model()

    ncm = NearestClassMean().fit(
        artifacts.train_embeddings, artifacts.train.labels
    )
    rows["NCM"] = evaluate_predictions(
        artifacts.test.labels,
        ncm.predict(artifacts.test_embeddings),
        num_classes,
    )

    rows["EOS fine-tune"] = evaluate_sampler(artifacts, "eos")

    ensemble = BalancedHeadEnsemble(
        lambda: Linear(feature_dim, num_classes, rng=np.random.default_rng(1)),
        n_heads=5,
        mode="oversample",
        sampler_factory=lambda seed: EOS(k_neighbors=10, random_state=seed),
        epochs=10,
        random_state=0,
    ).fit(artifacts.train_embeddings, artifacts.train.labels)
    rows["EOS-view ensemble (x5)"] = evaluate_predictions(
        artifacts.test.labels,
        ensemble.predict(artifacts.test_embeddings),
        num_classes,
    )

    print()
    print(
        format_table(
            ["strategy", "BAC", "GM", "FM"],
            [
                [name, format_float(m["bac"]), format_float(m["gm"]),
                 format_float(m["fm"])]
                for name, m in rows.items()
            ],
            title="Head strategies on identical embeddings",
        )
    )
    print(
        "\nReading: reweighting strategies (cRT / tau-norm / NCM) recover"
        "\nmuch of the minority performance; EOS adds synthetic boundary"
        "\ninformation on top, and averaging EOS views stabilizes it."
    )


if __name__ == "__main__":
    main()
