"""Generalization-gap study (paper Section V-A, Figures 3 & 4).

Trains extractors with each of the four losses the paper evaluates,
measures the per-class embedding-range gap between train and test, and
shows (a) the gap rising with class imbalance, (b) the TP-vs-FP gap,
(c) how EOS flattens the curve while SMOTE leaves it untouched.

Run:  python examples/generalization_gap_study.py [--scale small]
"""

import argparse

import numpy as np

from repro.core import EOS
from repro.core.gap import generalization_gap, tp_fp_gap
from repro.core.training import predict_logits
from repro.experiments import bench_config
from repro.experiments.pipeline import train_phase1
from repro.sampling import SMOTE
from repro.utils import format_float, format_table


def gap_curve(artifacts, sampler=None):
    """Per-class gap after optionally resampling the train embeddings."""
    emb, labels = artifacts.train_embeddings, artifacts.train.labels
    if sampler is not None:
        emb, labels = sampler.fit_resample(emb, labels)
    return generalization_gap(
        emb,
        labels,
        artifacts.test_embeddings,
        artifacts.test.labels,
        artifacts.info["num_classes"],
    )["per_class"]


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="small", choices=("tiny", "small", "medium"))
    parser.add_argument("--dataset", default="cifar10_like")
    args = parser.parse_args()

    config = bench_config(dataset=args.dataset, scale=args.scale)
    rows = []
    tp_fp_rows = []
    for loss in ("ce", "asl", "focal", "ldam"):
        artifacts = train_phase1(config, loss)
        base = gap_curve(artifacts)
        smote = gap_curve(artifacts, SMOTE(k_neighbors=5, random_state=0))
        eos = gap_curve(artifacts, EOS(k_neighbors=10, random_state=0))
        for name, curve in (("baseline", base), ("smote", smote), ("eos", eos)):
            rows.append(
                [loss, name] + [format_float(v, 3) for v in curve]
            )

        preds = predict_logits(artifacts.model, artifacts.test.images).argmax(axis=1)
        gaps = tp_fp_gap(
            artifacts.train_embeddings,
            artifacts.train.labels,
            artifacts.test_embeddings,
            artifacts.test.labels,
            preds,
            artifacts.info["num_classes"],
        )
        tp_fp_rows.append(
            [loss, format_float(gaps["tp"], 3), format_float(gaps["fp"], 3),
             format_float(gaps["ratio"], 2)]
        )

    num_classes = config and len(rows[0]) - 2
    headers = ["loss", "variant"] + ["c%d" % c for c in range(num_classes)]
    print(format_table(headers, rows,
                       title="Per-class generalization gap (class 0 = majority)"))
    print()
    print(format_table(
        ["loss", "TP gap", "FP gap", "FP/TP"],
        tp_fp_rows,
        title="Gap for correctly (TP) vs incorrectly (FP) classified test points",
    ))
    print(
        "\nReading: the baseline/smote rows rise toward the minority tail and"
        "\noverlap each other; the eos rows stay flat — EOS expands minority"
        "\nranges toward nearest adversaries, closing the train/test gap."
    )


if __name__ == "__main__":
    main()
