"""Long-tailed recognition: EOS vs per-class GANs as classes multiply.

The paper's scalability argument (Section V-D / Lessons Learned): CGAN
needs one generative model per class, so its cost grows linearly with
the number of classes, while EOS's nearest-enemy generation is a single
KNN pass.  This example sweeps the number of classes on the
CIFAR-100-like profile and reports accuracy and resampling cost for
both, plus the minority-tail recall EOS recovers.

Run:  python examples/long_tailed_recognition.py [--classes 20 50 100]
"""

import argparse

import numpy as np

from repro.core import EOS, finetune_classifier
from repro.core.training import predict_logits
from repro.data import apply_imbalance, exponential_profile
from repro.data.synthetic import DATASET_PROFILES, SyntheticImageFamily
from repro.experiments import build_sampler
from repro.losses import CrossEntropyLoss
from repro.metrics import evaluate_predictions, per_class_recall, confusion_matrix
from repro.nn import build_model
from repro.optim import SGD
from repro.core import ThreePhaseTrainer
from repro.utils import format_float, format_table


def run_subset(num_classes, seed=0, n_max=40, epochs=15):
    """Train on the first `num_classes` classes of the cifar100-like family."""
    import dataclasses

    base = DATASET_PROFILES["cifar100_like"]["config"]
    config = dataclasses.replace(base, num_classes=num_classes)
    family = SyntheticImageFamily(config)
    rng = np.random.default_rng(seed)
    counts = exponential_profile(n_max, num_classes, 10)
    train = apply_imbalance(family.sample(n_max, rng), counts, rng)
    test = family.sample(10, rng)

    model = build_model(
        "smallconvnet", num_classes=num_classes, width=6,
        rng=np.random.default_rng(seed + 1),
    )
    trainer = ThreePhaseTrainer(
        model,
        CrossEntropyLoss(),
        SGD(model.parameters(), lr=0.05, momentum=0.9, weight_decay=5e-4),
    )
    trainer.train_phase1(train, epochs=epochs, batch_size=32,
                         rng=np.random.default_rng(seed + 2))
    emb = trainer.extract_embeddings(train)
    head_state = model.classifier.state_dict()

    results = {}
    for name in ("eos", "cgan"):
        model.classifier.load_state_dict(head_state)
        sampler = build_sampler(name, k_neighbors=10, random_state=seed)
        import time

        start = time.perf_counter()
        balanced, labels = sampler.fit_resample(emb, train.labels)
        resample_seconds = time.perf_counter() - start
        finetune_classifier(model, balanced, labels, epochs=10,
                            rng=np.random.default_rng(seed + 3))
        preds = predict_logits(model, test.images).argmax(axis=1)
        metrics = evaluate_predictions(test.labels, preds, num_classes)
        cm = confusion_matrix(test.labels, preds, num_classes)
        tail = per_class_recall(cm)[num_classes // 2:].mean()
        results[name] = (metrics, resample_seconds, tail)
    return results


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--classes", type=int, nargs="+", default=[10, 25, 50])
    args = parser.parse_args()

    rows = []
    for k in args.classes:
        results = run_subset(k)
        for name, (metrics, seconds, tail) in results.items():
            rows.append(
                [
                    str(k),
                    name,
                    format_float(metrics["bac"]),
                    format_float(tail),
                    "%.2f" % seconds,
                ]
            )
    print(
        format_table(
            ["classes", "sampler", "BAC", "tail recall", "resample (s)"],
            rows,
            title="Long-tailed scaling: EOS vs per-class CGAN",
        )
    )
    print(
        "\nReading: CGAN's resampling cost grows with the class count (one"
        "\ngenerative model per deficient class) while EOS stays a single"
        "\nKNN pass; accuracy stays comparable."
    )


if __name__ == "__main__":
    main()
